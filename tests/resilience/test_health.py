"""NaN/divergence guard and automatic recovery.

Acceptance criteria pinned here: an injected NaN is detected within one
step; recovery proceeds by CFL backoff + dissipation bump + restore from
the last checkpoint; every detection and recovery increments an
always-on telemetry counter; the simulated machine's corrupted messages
are caught the same way.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.distsolver import DistributedEulerSolver
from repro.partition import recursive_spectral_bisection
from repro.resilience import (DivergenceError, FaultInjector, FaultSpec,
                              StepGuard)
from repro.solver import EulerSolver, SolverConfig
from repro.solver.monitor import residual_health
from repro.telemetry import global_counters


class TestResidualHealth:
    def test_classification(self):
        assert residual_health(1.0, 2.0, 10.0) == "ok"
        assert residual_health(float("nan"), 1.0, 10.0) == "nan"
        assert residual_health(float("inf"), 1.0, 10.0) == "nan"
        assert residual_health(100.0, 1.0, 10.0) == "diverged"
        # No finite reference yet: growth cannot be judged.
        assert residual_health(100.0, float("inf"), 10.0) == "ok"


class TestSequentialGuard:
    def _corrupting_callback(self):
        fired = []

        def callback(cycle, w, resnorm):
            if cycle == 3 and not fired:
                fired.append(True)
                w[7, 0] = np.nan      # in-place: poisons the next step
        return callback

    def test_nan_detected_within_one_step(self, bump_struct, winf):
        cfg = replace(SolverConfig(), max_recoveries=0)
        solver = EulerSolver(bump_struct, winf, cfg)
        with pytest.raises(DivergenceError) as excinfo:
            solver.run(n_cycles=10, callback=self._corrupting_callback())
        # Corruption lands at the end of cycle 3; the stage-0 residual of
        # cycle 4 is NaN — exactly one step later.
        assert excinfo.value.cycle == 4
        assert excinfo.value.kind == "nan"
        assert global_counters().get("resilience.guard.nan", 0) >= 1

    def test_recovery_backs_off_and_restores(self, bump_struct, winf):
        cfg = replace(SolverConfig(), checkpoint_interval=2,
                      max_recoveries=2)
        solver = EulerSolver(bump_struct, winf, cfg)
        cfl0, k2_0 = cfg.cfl, cfg.k2
        w, history = solver.run(n_cycles=6,
                                callback=self._corrupting_callback())
        assert np.isfinite(w).all()
        assert len(history) == 7            # 6 cycles + trailing norm
        assert np.isfinite(history).all()
        # CFL backoff + dissipation bump applied exactly once.
        assert solver.config.cfl == pytest.approx(
            cfl0 * cfg.recovery_cfl_factor)
        assert solver.config.k2 == pytest.approx(
            k2_0 * cfg.recovery_dissipation_factor)
        counters = global_counters()
        assert counters.get("resilience.guard.nan", 0) == 1
        assert counters.get("resilience.recovery.cfl_backoff", 0) == 1
        assert counters.get("resilience.recovery.restore", 0) == 1

    def test_guard_off_lets_nan_through(self, bump_struct, winf):
        cfg = replace(SolverConfig(), divergence_guard=False)
        solver = EulerSolver(bump_struct, winf, cfg)
        w, history = solver.run(n_cycles=6,
                                callback=self._corrupting_callback())
        assert np.isnan(w).any()            # the pre-guard behaviour
        assert not global_counters().get("resilience.guard.nan", 0)

    def test_guarded_run_bit_identical_to_unguarded_when_healthy(
            self, bump_struct, winf):
        w_on, h_on = EulerSolver(bump_struct, winf,
                                 SolverConfig()).run(n_cycles=5)
        cfg_off = replace(SolverConfig(), divergence_guard=False)
        w_off, h_off = EulerSolver(bump_struct, winf, cfg_off).run(n_cycles=5)
        assert np.array_equal(w_on, w_off)
        assert h_on == h_off

    def test_divergence_growth_ratio_triggers(self, bump_struct, winf):
        cfg = replace(SolverConfig(), guard_growth_ratio=1.0 + 1e-9,
                      max_recoveries=0)
        solver = EulerSolver(bump_struct, winf, cfg)
        # The transonic startup residual is not monotone, so an absurdly
        # tight growth ratio must trip the "diverged" branch.
        with pytest.raises(DivergenceError) as excinfo:
            solver.run(n_cycles=50)
        assert excinfo.value.kind == "diverged"
        assert global_counters().get("resilience.guard.diverged", 0) >= 1

    def test_exhausted_recoveries_raise(self, bump_struct, winf):
        cfg = replace(SolverConfig(), max_recoveries=1,
                      checkpoint_interval=0)

        def always_corrupt(cycle, w, resnorm):
            w[3, 0] = np.nan

        solver = EulerSolver(bump_struct, winf, cfg)
        with pytest.raises(DivergenceError) as excinfo:
            solver.run(n_cycles=5, callback=always_corrupt)
        assert excinfo.value.recoveries == 1
        assert global_counters().get("resilience.recovery.exhausted", 0) == 1


class TestStepGuardUnit:
    class _FakeSolver:
        def __init__(self, config):
            self.config = config
            self.recoveries_applied = 0

        def apply_recovery(self):
            self.recoveries_applied += 1
            self.config = self.config.backed_off()

    def test_recovery_applies_to_every_solver(self):
        cfg = replace(SolverConfig(), max_recoveries=1)
        solvers = [self._FakeSolver(cfg) for _ in range(3)]
        guard = StepGuard(solvers, np.zeros((4, 5)), start_cycle=0)
        w, cycle = guard.recover(5, "nan", float("nan"))
        assert cycle == 0 and w.shape == (4, 5)
        assert all(s.recoveries_applied == 1 for s in solvers)
        with pytest.raises(DivergenceError):
            guard.recover(5, "nan", float("nan"))


class TestSimulatedMachineCorruption:
    def test_corrupted_gather_payload_is_caught(self, bump_struct, winf):
        asg = recursive_spectral_bisection(bump_struct.edges,
                                           bump_struct.n_vertices, 3)
        injector = FaultInjector(
            [FaultSpec(kind="corrupt", phase="w-gather", occurrence=2,
                       rank=0)], seed=7)
        cfg = replace(SolverConfig(), max_recoveries=0)
        solver = DistributedEulerSolver(bump_struct, winf, asg, cfg,
                                        injector=injector)
        with pytest.raises(DivergenceError) as excinfo:
            solver.run(n_cycles=6)
        # Corruption hits the occurrence-2 w-gather (during cycle 1's
        # step); the next cycle's pre-step health check catches it.
        assert excinfo.value.cycle <= 3
        counters = global_counters()
        assert counters.get("resilience.fault.corrupt", 0) == 1
        assert counters.get("resilience.guard.nan", 0) >= 1

    def test_dropped_sim_message_counted(self, bump_struct, winf):
        asg = recursive_spectral_bisection(bump_struct.edges,
                                           bump_struct.n_vertices, 2)
        injector = FaultInjector(
            [FaultSpec(kind="drop", phase="q-scatter", occurrence=1)])
        cfg = replace(SolverConfig(), divergence_guard=False)
        solver = DistributedEulerSolver(bump_struct, winf, asg, cfg,
                                        injector=injector)
        solver.run(n_cycles=1)
        assert global_counters().get("resilience.fault.drop", 0) >= 1

    def test_corruption_is_deterministic(self, rng):
        injector_a = FaultInjector(
            [FaultSpec(kind="corrupt", phase="p", occurrence=1)], seed=3)
        injector_b = FaultInjector(
            [FaultSpec(kind="corrupt", phase="p", occurrence=1)], seed=3)
        payload = rng.normal(size=(6, 5))
        out_a = injector_a.on_sim_message("p", 1, 0, 1, payload.copy())
        out_b = injector_b.on_sim_message("p", 1, 0, 1, payload.copy())
        assert np.isnan(out_a).sum() == 1
        assert np.array_equal(np.isnan(out_a), np.isnan(out_b))
