"""Fixtures and a hang guard for the fault-injection suite.

The suite exercises deliberately-broken distributed runs, so a
regression here looks like a *hang*, not a failure.  The autouse
``_hang_guard`` fixture is the in-tree equivalent of ``pytest-timeout``
(which CI additionally installs and enables suite-wide): it arms a
``SIGALRM`` per test and fails fast instead of stalling the workflow.
"""

from __future__ import annotations

import signal
import threading

import numpy as np
import pytest

from repro.partition import recursive_spectral_bisection
from repro.distsolver.partitioned_mesh import partition_solver_data
from repro.solver import build_boundary_data
from repro.telemetry import reset_global_counters

#: Per-test wall-clock budget, seconds.  Every test here finishes in
#: well under ten seconds; a minute means something is hung.
HANG_GUARD_S = 60


@pytest.fixture(autouse=True)
def _hang_guard():
    if (not hasattr(signal, "SIGALRM")
            or threading.current_thread() is not threading.main_thread()):
        yield
        return

    def _alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {HANG_GUARD_S} s hang guard "
            "(see tests/resilience/conftest.py)")

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.alarm(HANG_GUARD_S)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(autouse=True)
def _fresh_counters():
    """Each test reads its own resilience.* event counters."""
    reset_global_counters()
    yield


@pytest.fixture(scope="module")
def dmesh3(bump_struct):
    asg = recursive_spectral_bisection(bump_struct.edges,
                                       bump_struct.n_vertices, 3)
    return partition_solver_data(bump_struct,
                                 build_boundary_data(bump_struct), asg)


@pytest.fixture(scope="module")
def w0_global(bump_struct, winf):
    return np.tile(winf, (bump_struct.n_vertices, 1))
