"""Tests for the Section 2.4 preprocessing pipeline."""

import numpy as np
import pytest

from repro.mesh import bump_channel
from repro.pipeline import (preprocess, read_processor_file,
                            write_processor_files)


@pytest.fixture(scope="module")
def case(winf):
    meshes = [bump_channel(12, 2, 4), bump_channel(6, 2, 2)]
    return preprocess(meshes, winf, n_ranks=4)


class TestPreprocess:
    def test_all_stages_timed(self, case):
        assert set(case.timings) == {
            "edge structures + transfers", "edge colouring",
            "spectral partitioning", "processor data (inspector)"}
        assert all(t >= 0 for t in case.timings.values())

    def test_levels_and_ranks(self, case):
        assert case.n_levels == 2
        assert case.n_ranks == 4
        assert len(case.colorings) == 2
        assert len(case.assignments) == 2

    def test_colorings_valid(self, case):
        from repro.coloring import verify_coloring
        for lv, col in zip(case.hierarchy.levels, case.colorings):
            struct = lv.solver.struct
            assert verify_coloring(struct.edges, col, struct.n_vertices)

    def test_partitions_cover_levels(self, case):
        for lv, asg in zip(case.hierarchy.levels, case.assignments):
            assert asg.shape == (lv.solver.n_vertices,)
            assert asg.max() == 3

    def test_report_renders(self, case):
        assert "preprocessing timings" in case.report()


class TestProcessorFiles:
    def test_write_and_read_roundtrip(self, case, tmp_path):
        paths = write_processor_files(case, tmp_path, level=0)
        assert len(paths) == 4
        data = read_processor_file(paths[2])
        rm = case.dmeshes[0].ranks[2]
        assert data["rank"] == 2
        np.testing.assert_array_equal(data["edges"], rm.edges)
        np.testing.assert_array_equal(data["owned_globals"],
                                      case.dmeshes[0].table.owned_globals[2])

    def test_files_partition_all_vertices(self, case, tmp_path):
        paths = write_processor_files(case, tmp_path, level=0)
        owned = np.concatenate([read_processor_file(p)["owned_globals"]
                                for p in paths])
        n = case.hierarchy.levels[0].solver.n_vertices
        assert np.sort(owned).tolist() == list(range(n))

    def test_coarse_level_files(self, case, tmp_path):
        paths = write_processor_files(case, tmp_path, level=1)
        total_edges = sum(read_processor_file(p)["edges"].shape[0]
                          for p in paths)
        assert total_edges == case.hierarchy.levels[1].solver.n_edges
