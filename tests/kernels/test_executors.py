"""Property tests for the scatter executors (hypothesis, random meshes).

The executors reassociate the per-vertex accumulation (colour by colour,
optionally thread by thread), so they must match the ``np.add.at``
reference and the CSR scatter to roundoff on *arbitrary* edge lists —
not just the meshes the fixtures happen to build.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.coloring import verify_coloring
from repro.kernels import ColoredExecutor, SerialExecutor, make_executor
from repro.scatter import EdgeScatter, scatter_add_edges

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])


def random_edges(seed: int, n_vertices: int, n_edges: int) -> np.ndarray:
    """Random simple edge list (no self-loops, no duplicate edges)."""
    rng = np.random.default_rng(seed)
    n_edges = min(n_edges, n_vertices * (n_vertices - 1) // 2)
    pairs = set()
    while len(pairs) < n_edges:
        i, j = rng.integers(0, n_vertices, 2)
        if i != j:
            pairs.add((min(i, j), max(i, j)))
    return np.array(sorted(pairs), dtype=np.int64)


class TestColoredMatchesReference:
    @given(seed=st.integers(0, 10_000), nv=st.integers(4, 40),
           n_threads=st.sampled_from([1, 2, 4]))
    @settings(max_examples=60, **COMMON)
    def test_signed_unsigned_neighbor(self, seed, nv, n_threads):
        rng = np.random.default_rng(seed)
        ne = int(rng.integers(1, max(2, 2 * nv)))
        edges = random_edges(seed, nv, ne)
        ex = ColoredExecutor(edges, nv, n_threads=n_threads)
        try:
            vals = rng.standard_normal((edges.shape[0], 5))
            ref = scatter_add_edges(edges, vals, nv)
            got = ex.signed(vals)
            assert np.max(np.abs(got - ref)) <= 1e-12 * max(
                1.0, np.max(np.abs(ref)))

            csr = EdgeScatter(edges, nv)
            scal = rng.standard_normal(edges.shape[0])
            assert np.allclose(ex.unsigned(scal), csr.unsigned(scal),
                               rtol=1e-12, atol=1e-13)
            vv = rng.standard_normal((nv, 5))
            assert np.allclose(ex.neighbor_sum(vv), csr.neighbor_sum(vv),
                               rtol=1e-12, atol=1e-13)
        finally:
            ex.close()

    @given(seed=st.integers(0, 10_000), nv=st.integers(4, 30))
    @settings(max_examples=40, **COMMON)
    def test_thread_count_invariance(self, seed, nv):
        """Results are bit-identical across n_threads in {1, 2, 4}.

        Within one colour every vertex appears at most once, so the
        subgroup split never changes any vertex's summation order —
        threading only changes *who* writes, not *in what order*.
        """
        rng = np.random.default_rng(seed)
        ne = int(rng.integers(1, max(2, 2 * nv)))
        edges = random_edges(seed, nv, ne)
        vals = rng.standard_normal((edges.shape[0], 5))
        vv = rng.standard_normal((nv, 5))
        results = []
        for n_threads in (1, 2, 4):
            with ColoredExecutor(edges, nv, n_threads=n_threads) as ex:
                results.append((ex.signed(vals), ex.unsigned(vals),
                                ex.neighbor_sum(vv)))
        for got in results[1:]:
            for a, b in zip(results[0], got):
                assert np.array_equal(a, b)


class TestColoredExecutor:
    def test_coloring_is_conflict_free(self, bump_struct):
        ex = ColoredExecutor(bump_struct.edges, bump_struct.n_vertices)
        assert verify_coloring(bump_struct.edges, ex.coloring,
                               bump_struct.n_vertices)

    def test_degree_matches_csr(self, bump_struct):
        ex = ColoredExecutor(bump_struct.edges, bump_struct.n_vertices)
        csr = EdgeScatter(bump_struct.edges, bump_struct.n_vertices)
        assert np.array_equal(ex.degree, csr.degree)

    def test_out_buffer_reuse_overwrites(self, bump_struct, rng):
        ex = ColoredExecutor(bump_struct.edges, bump_struct.n_vertices)
        vals = rng.standard_normal((bump_struct.n_edges, 5))
        out = np.full((bump_struct.n_vertices, 5), 123.0)
        got = ex.signed(vals, out=out)
        assert got is out
        assert np.array_equal(out, ex.signed(vals))

    def test_out_shape_validated(self, bump_struct):
        ex = ColoredExecutor(bump_struct.edges, bump_struct.n_vertices)
        with pytest.raises(ValueError, match="shape"):
            ex.signed(np.zeros((bump_struct.n_edges, 5)),
                      out=np.zeros((3, 5)))

    def test_bad_edges_shape_rejected(self):
        with pytest.raises(ValueError, match="edges"):
            ColoredExecutor(np.zeros((4, 3), dtype=int), 5)

    def test_close_is_idempotent(self, bump_struct):
        ex = ColoredExecutor(bump_struct.edges, bump_struct.n_vertices,
                             n_threads=2)
        ex.close()
        ex.close()


class TestMakeExecutor:
    def test_kinds(self, bump_struct):
        edges, nv = bump_struct.edges, bump_struct.n_vertices
        assert isinstance(make_executor(edges, nv, "serial"), SerialExecutor)
        assert isinstance(make_executor(edges, nv, "fused"), SerialExecutor)
        ex = make_executor(edges, nv, "colored", n_threads=4)
        assert isinstance(ex, ColoredExecutor) and ex.n_threads == 1
        ex = make_executor(edges, nv, "colored-threaded", n_threads=3)
        assert isinstance(ex, ColoredExecutor) and ex.n_threads == 3

    def test_unknown_kind_raises(self, bump_struct):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor(bump_struct.edges, bump_struct.n_vertices, "mpi")
