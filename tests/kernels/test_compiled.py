"""Tests for the compiled (numba) executor family.

Two halves, by environment:

* **No-numba half** — always runs, and is the *only* half that runs in
  the default CI legs: graceful degradation (``executor="compiled"``
  raises :class:`ExecutorUnavailableError` naming the pip extra,
  ``"auto"`` silently falls back to ``fused``), the calibration-table
  loader, and the colour-offset sanitizer (pure NumPy).

* **Numba half** — skipped without the ``compiled`` extra: hypothesis
  bit-identity of the compiled scatters against the ``np.add.at``
  reference, compiled-vs-fused residual/step agreement (≤1e-12
  relative), degenerate meshes (zero edges, single colour), and the
  warm-up test asserting the second call reuses the compiled overload
  instead of recompiling.
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.sanitize import ColorRaceSanitizer, SanitizerError
from repro.kernels import make_executor, resolve_auto_kind
from repro.kernels.calibration import (DEFAULT_COMPILED_MIN_EDGES,
                                       crossover, invalidate_cache)
from repro.kernels.compiled import (NUMBA_AVAILABLE, CompiledExecutor,
                                    CompiledParallelExecutor,
                                    CompiledResidual,
                                    ExecutorUnavailableError)
from repro.mesh import box_mesh, build_edge_structure
from repro.scatter import scatter_add_edges
from repro.solver import EulerSolver, SolverConfig

requires_numba = pytest.mark.skipif(
    not NUMBA_AVAILABLE, reason="numba not installed (compiled extra)")
without_numba = pytest.mark.skipif(
    NUMBA_AVAILABLE, reason="degradation paths only exist without numba")

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])


def random_edges(seed: int, n_vertices: int, n_edges: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    n_edges = min(n_edges, n_vertices * (n_vertices - 1) // 2)
    pairs = set()
    while len(pairs) < n_edges:
        i, j = rng.integers(0, n_vertices, 2)
        if i != j:
            pairs.add((min(i, j), max(i, j)))
    return np.array(sorted(pairs), dtype=np.int64)


# ----------------------------------------------------------------------
# Graceful degradation (the no-numba contract)
# ----------------------------------------------------------------------

class TestDegradation:
    @without_numba
    def test_compiled_kind_raises_naming_extra(self, bump_struct):
        for kind in ("compiled", "compiled-parallel"):
            with pytest.raises(ExecutorUnavailableError,
                               match=r"repro\[compiled\]"):
                make_executor(bump_struct.edges, bump_struct.n_vertices,
                              kind=kind)

    @without_numba
    def test_compiled_solver_raises(self, bump_struct, winf):
        with pytest.raises(ExecutorUnavailableError,
                           match=r"pip install repro\[compiled\]"):
            EulerSolver(bump_struct, winf, SolverConfig(executor="compiled"))

    @without_numba
    def test_auto_silently_falls_back(self, bump_struct, winf):
        # No exception, and the resolved kind is a NumPy one.
        kind = resolve_auto_kind(bump_struct.edges, bump_struct.n_vertices,
                                 n_threads=4)
        assert kind in ("fused", "colored-threaded")
        solver = EulerSolver(bump_struct, winf,
                             SolverConfig(executor="auto", n_threads=4))
        w = solver.step(solver.freestream_solution())
        assert np.isfinite(w).all()

    @without_numba
    def test_distributed_compiled_rank_ops_raise(self, bump_struct):
        from repro.distsolver.rank_kernels import rank_ops
        from repro.distsolver.partitioned_mesh import partition_solver_data
        from repro.partition import recursive_spectral_bisection
        from repro.solver import build_boundary_data
        asg = recursive_spectral_bisection(bump_struct.edges,
                                           bump_struct.n_vertices, 2)
        dmesh = partition_solver_data(bump_struct,
                                      build_boundary_data(bump_struct), asg)
        with pytest.raises(ExecutorUnavailableError):
            rank_ops(dmesh.ranks[0], compiled=True)

    def test_config_accepts_compiled_kinds(self):
        # Validation is environment-independent: the kinds are always
        # legal config; only *construction* requires the backend.
        for kind in ("compiled", "compiled-parallel"):
            assert SolverConfig(executor=kind).executor == kind


# ----------------------------------------------------------------------
# Calibration table
# ----------------------------------------------------------------------

class TestCalibration:
    def test_missing_table_falls_back(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CALIBRATION", str(tmp_path / "nope.json"))
        invalidate_cache()
        try:
            assert crossover("compiled_min_edges", 1234.0) == 1234.0
        finally:
            invalidate_cache()

    def test_measured_value_wins(self, tmp_path, monkeypatch):
        table = {"crossovers": {"compiled_min_edges": 777,
                                "colored_threaded_min_per_color": None}}
        path = tmp_path / "cal.json"
        path.write_text(json.dumps(table))
        monkeypatch.setenv("REPRO_CALIBRATION", str(path))
        invalidate_cache()
        try:
            assert crossover("compiled_min_edges", 1.0) == 777.0
            # null records fall back per-key, not per-table.
            assert crossover("colored_threaded_min_per_color", 42.0) == 42.0
        finally:
            invalidate_cache()

    def test_malformed_table_is_not_fatal(self, tmp_path, monkeypatch):
        path = tmp_path / "cal.json"
        path.write_text("{not json")
        monkeypatch.setenv("REPRO_CALIBRATION", str(path))
        invalidate_cache()
        try:
            assert crossover("compiled_min_edges",
                             DEFAULT_COMPILED_MIN_EDGES) \
                == DEFAULT_COMPILED_MIN_EDGES
        finally:
            invalidate_cache()


# ----------------------------------------------------------------------
# Colour-offset sanitizer (pure NumPy — always runs)
# ----------------------------------------------------------------------

class TestColorOffsetSanitizer:
    def test_valid_layout_passes(self):
        # Two segments, each a matching: conflict-free.
        e0 = np.array([0, 2, 0, 1], dtype=np.int64)
        e1 = np.array([1, 3, 2, 3], dtype=np.int64)
        offsets = np.array([0, 2, 4], dtype=np.int64)
        ColorRaceSanitizer().check_color_offsets(e0, e1, offsets, 4)

    def test_race_detected(self):
        # Segment 0 holds edges (0,1) and (1,2): vertex 1 races.
        e0 = np.array([0, 1], dtype=np.int64)
        e1 = np.array([1, 2], dtype=np.int64)
        offsets = np.array([0, 2], dtype=np.int64)
        with pytest.raises(SanitizerError, match="color.race"):
            ColorRaceSanitizer().check_color_offsets(e0, e1, offsets, 3)

    def test_bad_offsets_detected(self):
        e0 = np.array([0, 2], dtype=np.int64)
        e1 = np.array([1, 3], dtype=np.int64)
        for bad in ([0, 1], [1, 2], [0, 2, 1]):
            with pytest.raises(SanitizerError, match="color.offsets"):
                ColorRaceSanitizer().check_color_offsets(
                    e0, e1, np.array(bad, dtype=np.int64), 4)

    def test_empty_segments_allowed(self):
        e0 = np.zeros(0, dtype=np.int64)
        e1 = np.zeros(0, dtype=np.int64)
        offsets = np.array([0, 0, 0], dtype=np.int64)
        ColorRaceSanitizer().check_color_offsets(e0, e1, offsets, 5)


# ----------------------------------------------------------------------
# Compiled executors: bit-identity with the reference scatter
# ----------------------------------------------------------------------

@requires_numba
class TestCompiledScatterMatchesReference:
    @given(seed=st.integers(0, 10_000), nv=st.integers(4, 40),
           parallel=st.booleans())
    @settings(max_examples=40, **COMMON)
    def test_signed_unsigned_neighbor(self, seed, nv, parallel):
        rng = np.random.default_rng(seed)
        ne = int(rng.integers(1, max(2, 2 * nv)))
        edges = random_edges(seed, nv, ne)
        cls = CompiledParallelExecutor if parallel else CompiledExecutor
        ex = cls(edges, nv)
        vals = rng.standard_normal((edges.shape[0], 5))
        ref = scatter_add_edges(edges, vals, nv)
        got = ex.signed(vals)
        assert np.max(np.abs(got - ref)) <= 1e-12 * max(
            1.0, np.max(np.abs(ref)))
        scal = rng.standard_normal(edges.shape[0])
        ref1 = np.zeros(nv)
        np.add.at(ref1, edges[:, 0], scal)
        np.add.at(ref1, edges[:, 1], scal)
        assert np.allclose(ex.unsigned(scal), ref1, rtol=1e-12, atol=1e-13)
        vv = rng.standard_normal((nv, 5))
        refn = np.zeros((nv, 5))
        np.add.at(refn, edges[:, 0], vv[edges[:, 1]])
        np.add.at(refn, edges[:, 1], vv[edges[:, 0]])
        assert np.allclose(ex.neighbor_sum(vv), refn, rtol=1e-12, atol=1e-13)

    def test_zero_edge_mesh(self):
        edges = np.zeros((0, 2), dtype=np.int64)
        for cls in (CompiledExecutor, CompiledParallelExecutor):
            ex = cls(edges, 5)
            assert np.array_equal(ex.signed(np.zeros((0, 5))),
                                  np.zeros((5, 5)))
            assert np.array_equal(ex.unsigned(np.zeros(0)), np.zeros(5))
            assert np.array_equal(ex.neighbor_sum(np.ones((5, 5))),
                                  np.zeros((5, 5)))

    def test_single_colour_mesh(self, rng):
        # A perfect matching colours with ONE colour: the parallel
        # executor's entire edge list runs in a single prange segment.
        edges = np.array([[0, 1], [2, 3], [4, 5]], dtype=np.int64)
        ex = CompiledParallelExecutor(edges, 6, n_threads=2)
        assert ex.offsets.size == 2  # one segment
        vals = rng.standard_normal((3, 5))
        assert np.allclose(ex.signed(vals), scatter_add_edges(edges, vals, 6),
                           rtol=1e-12, atol=1e-13)

    def test_deterministic_across_calls(self, bump_struct, rng):
        ex = CompiledParallelExecutor(bump_struct.edges,
                                      bump_struct.n_vertices, n_threads=4)
        vals = rng.standard_normal((bump_struct.n_edges, 5))
        assert np.array_equal(ex.signed(vals), ex.signed(vals))


# ----------------------------------------------------------------------
# Compiled residual: agreement with the fused oracle
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def box10_struct():
    return build_edge_structure(box_mesh(10, 10, 10))


@requires_numba
class TestCompiledResidualMatchesFused:
    @pytest.mark.parametrize("kind", ["compiled", "compiled-parallel"])
    def test_residual_and_step(self, box10_struct, winf, kind):
        cfg_f = SolverConfig(executor="fused")
        cfg_c = SolverConfig(executor=kind, n_threads=4)
        s_f = EulerSolver(box10_struct, winf, cfg_f)
        s_c = EulerSolver(box10_struct, winf, cfg_c)
        assert isinstance(s_c.fused, CompiledResidual)
        rng = np.random.default_rng(7)
        w = s_f.freestream_solution()
        w *= rng.uniform(0.97, 1.03, (w.shape[0], 1))
        r_f = s_f.fused.residual(w.copy())
        r_c = s_c.fused.residual(w.copy())
        scale = max(1.0, float(np.max(np.abs(r_f))))
        assert np.max(np.abs(r_c - r_f)) <= 1e-12 * scale
        w_f, w_c = w.copy(), w.copy()
        for _ in range(3):
            w_f, _ = s_f.fused.step(w_f)
            w_c, _ = s_c.fused.step(w_c)
        np.testing.assert_allclose(w_c, w_f, rtol=1e-12, atol=1e-13)

    def test_timestep_matches(self, bump_struct, winf):
        s_f = EulerSolver(bump_struct, winf, SolverConfig(executor="fused"))
        s_c = EulerSolver(bump_struct, winf,
                          SolverConfig(executor="compiled"))
        w = s_f.freestream_solution()
        dt_f = np.empty(w.shape[0])
        dt_c = np.empty(w.shape[0])
        s_f.fused.timestep(w, out=dt_f, update_state=True)
        s_c.fused.timestep(w, out=dt_c, update_state=True)
        np.testing.assert_allclose(dt_c, dt_f, rtol=1e-12, atol=1e-14)

    def test_auto_prefers_compiled(self, box10_struct):
        # box10 clears the compiled crossover by orders of magnitude.
        kind = resolve_auto_kind(box10_struct.edges, box10_struct.n_vertices,
                                 n_threads=4)
        assert kind in ("compiled", "compiled-parallel")
        assert resolve_auto_kind(box10_struct.edges, box10_struct.n_vertices,
                                 n_threads=1) == "compiled"


@requires_numba
class TestWarmupAndCache:
    def test_second_call_does_not_recompile(self, bump_struct, rng):
        from repro.kernels.compiled import load_kernels
        k = load_kernels()
        ex = CompiledExecutor(bump_struct.edges, bump_struct.n_vertices)
        vals = rng.standard_normal((bump_struct.n_edges, 5))
        ex.signed(vals)  # warm-up: compiles (or loads the disk cache)
        n_overloads = len(k.scatter_signed_ser.overloads)
        assert n_overloads >= 1
        ex.signed(vals)
        ex.signed(vals)
        # Same dtypes/layout -> the jitted overload is reused as-is.
        assert len(k.scatter_signed_ser.overloads) == n_overloads
