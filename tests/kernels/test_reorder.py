"""RCM cache-locality edge reordering: invariants and numerics."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.kernels import (locality_edge_order, rcm_vertex_order,
                           reorder_edges)
from repro.solver import EulerSolver, SolverConfig

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


class TestOrders:
    def test_vertex_order_is_permutation(self, bump_struct):
        order = rcm_vertex_order(bump_struct.edges, bump_struct.n_vertices)
        assert np.array_equal(np.sort(order),
                              np.arange(bump_struct.n_vertices))

    def test_edge_order_is_permutation(self, bump_struct):
        perm = locality_edge_order(bump_struct.edges,
                                   bump_struct.n_vertices)
        assert np.array_equal(np.sort(perm),
                              np.arange(bump_struct.n_edges))

    def test_edges_sorted_by_rcm_rank(self, bump_struct):
        order = rcm_vertex_order(bump_struct.edges, bump_struct.n_vertices)
        perm = locality_edge_order(bump_struct.edges,
                                   bump_struct.n_vertices)
        rank = np.empty(bump_struct.n_vertices, dtype=np.int64)
        rank[order] = np.arange(bump_struct.n_vertices)
        r = rank[bump_struct.edges[perm]]
        key = np.minimum(r[:, 0], r[:, 1]) * bump_struct.n_vertices \
            + np.maximum(r[:, 0], r[:, 1])
        assert np.all(np.diff(key) >= 0)


class TestReorderedStructure:
    def test_vertex_fields_shared_edges_permuted(self, bump_struct):
        rs = reorder_edges(bump_struct)
        assert rs.dual_volumes is bump_struct.dual_volumes
        assert rs.n_vertices == bump_struct.n_vertices
        # Same edge set (with matching eta rows), different order.
        def keyed(struct):
            key = struct.edges[:, 0] * struct.n_vertices + struct.edges[:, 1]
            o = np.argsort(key)
            return struct.edges[o], struct.eta[o]
        e_ref, eta_ref = keyed(bump_struct)
        e_new, eta_new = keyed(rs)
        assert np.array_equal(e_ref, e_new)
        assert np.array_equal(eta_ref, eta_new)

    def test_explicit_perm(self, bump_struct):
        perm = np.arange(bump_struct.n_edges)[::-1]
        rs = reorder_edges(bump_struct, perm=perm)
        assert np.array_equal(rs.edges, bump_struct.edges[::-1])

    def test_residual_unchanged_to_roundoff(self, bump_struct, winf):
        s_ref = EulerSolver(bump_struct, winf, SolverConfig())
        s_ro = EulerSolver(reorder_edges(bump_struct), winf, SolverConfig())
        rng = np.random.default_rng(5)
        w = s_ref.freestream_solution()
        w *= 1.0 + 0.05 * rng.standard_normal(w.shape)
        r_ref = s_ref.residual(w)
        r_ro = s_ro.residual(w)
        assert np.max(np.abs(r_ro - r_ref)) < 1e-12 * np.max(np.abs(r_ref))


@given(seed=st.integers(0, 5000), n=st.integers(3, 6))
@settings(max_examples=20, **COMMON)
def test_rcm_reduces_bandwidth_on_boxes(seed, n):
    """RCM rank spread along edges never beats the identity ordering badly.

    (The point of the reordering; on structured boxes RCM is at least as
    tight as the lexicographic mesh numbering.)
    """
    from repro.mesh import box_mesh, build_edge_structure
    struct = build_edge_structure(box_mesh(n, n, n))
    order = rcm_vertex_order(struct.edges, struct.n_vertices)
    rank = np.empty(struct.n_vertices, dtype=np.int64)
    rank[order] = np.arange(struct.n_vertices)
    spread_rcm = np.abs(np.diff(rank[struct.edges], axis=1)).max()
    spread_id = np.abs(np.diff(struct.edges, axis=1)).max()
    assert spread_rcm <= spread_id
