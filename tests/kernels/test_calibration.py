"""Error paths of the executor-crossover calibration table.

The contract under test: a missing, malformed, or null-filled table must
degrade ``executor="auto"`` to the hand-coded fallbacks, never raise.
"""

import json

import pytest

from repro.kernels import calibration
from repro.kernels.calibration import (CALIBRATION_ENV,
                                       DEFAULT_COMPILED_MIN_EDGES,
                                       calibration_path, crossover,
                                       invalidate_cache, load_calibration)


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test resolves the table from scratch and leaves no cache."""
    invalidate_cache()
    yield
    invalidate_cache()


def _point_at(monkeypatch, path) -> None:
    monkeypatch.setenv(CALIBRATION_ENV, str(path))


class TestLoadErrors:
    def test_env_pointing_at_missing_file_gives_empty(self, monkeypatch,
                                                      tmp_path):
        _point_at(monkeypatch, tmp_path / "nope.json")
        assert load_calibration() == {}

    def test_malformed_json_gives_empty(self, monkeypatch, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{ truncated", encoding="utf-8")
        _point_at(monkeypatch, bad)
        assert load_calibration() == {}

    def test_non_dict_document_gives_empty(self, monkeypatch, tmp_path):
        top_level_list = tmp_path / "list.json"
        top_level_list.write_text("[1, 2, 3]", encoding="utf-8")
        _point_at(monkeypatch, top_level_list)
        assert load_calibration() == {}

    def test_env_override_wins_over_packaged_table(self, monkeypatch,
                                                   tmp_path):
        table = tmp_path / "cal.json"
        table.write_text("{}", encoding="utf-8")
        _point_at(monkeypatch, table)
        assert calibration_path() == table

    def test_cache_invalidation_sees_new_env(self, monkeypatch, tmp_path):
        a = tmp_path / "a.json"
        a.write_text(json.dumps({"crossovers": {"x": 5}}), encoding="utf-8")
        _point_at(monkeypatch, a)
        assert crossover("x", 1.0) == 5.0
        b = tmp_path / "b.json"
        b.write_text(json.dumps({"crossovers": {"x": 7}}), encoding="utf-8")
        _point_at(monkeypatch, b)
        # The cache keys on the resolved path, so no explicit
        # invalidation is needed when the env var moves.
        assert crossover("x", 1.0) == 7.0


class TestCrossoverFallbacks:
    def test_null_crossover_falls_back(self, monkeypatch, tmp_path):
        table = tmp_path / "cal.json"
        table.write_text(json.dumps(
            {"crossovers": {"compiled_min_edges": None}}), encoding="utf-8")
        _point_at(monkeypatch, table)
        assert crossover("compiled_min_edges",
                         DEFAULT_COMPILED_MIN_EDGES) == \
            DEFAULT_COMPILED_MIN_EDGES

    def test_all_null_table_degrades_to_heuristic(self, monkeypatch,
                                                  tmp_path):
        table = tmp_path / "cal.json"
        table.write_text(json.dumps({"crossovers": {
            "colored_threaded_min_per_color": None,
            "compiled_min_edges": None,
            "compiled_parallel_min_edges": None,
        }}), encoding="utf-8")
        _point_at(monkeypatch, table)
        for name in ("colored_threaded_min_per_color", "compiled_min_edges",
                     "compiled_parallel_min_edges"):
            assert crossover(name, 1234.0) == 1234.0

    def test_uncastable_value_falls_back(self, monkeypatch, tmp_path):
        table = tmp_path / "cal.json"
        table.write_text(json.dumps(
            {"crossovers": {"compiled_min_edges": "not-a-number"}}),
            encoding="utf-8")
        _point_at(monkeypatch, table)
        assert crossover("compiled_min_edges", 42.0) == 42.0

    def test_missing_crossovers_section_falls_back(self, monkeypatch,
                                                   tmp_path):
        table = tmp_path / "cal.json"
        table.write_text("{}", encoding="utf-8")
        _point_at(monkeypatch, table)
        assert crossover("compiled_min_edges", 42.0) == 42.0


class TestAutoResolutionSurvives:
    def test_auto_kind_resolves_with_broken_table(self, monkeypatch,
                                                  tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all", encoding="utf-8")
        _point_at(monkeypatch, bad)
        import numpy as np

        from repro.kernels.executors import resolve_auto_kind
        edges = np.array([[0, 1], [1, 2], [2, 3], [3, 0]])
        kind = resolve_auto_kind(edges, n_vertices=4, n_threads=2)
        assert isinstance(kind, str) and kind
