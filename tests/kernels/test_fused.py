"""FusedResidual vs the seed operators: numerics and allocation discipline."""

import numpy as np
import pytest

from repro.kernels import ColoredExecutor, FusedResidual, StageWorkspace
from repro.solver import EulerSolver, SolverConfig
from repro.solver.bc import BoundaryData
from repro.state import pressure, primitive_from_conserved


@pytest.fixture(scope="module")
def seed_solver(bump_struct, winf):
    return EulerSolver(bump_struct, winf, SolverConfig())


@pytest.fixture(scope="module")
def fused(bump_struct, seed_solver, winf):
    return FusedResidual(bump_struct, BoundaryData(bump_struct),
                         seed_solver.config, winf)


@pytest.fixture(scope="module")
def state(seed_solver):
    rng = np.random.default_rng(7)
    w = seed_solver.freestream_solution()
    return w * (1.0 + 0.05 * rng.standard_normal(w.shape))


def rel(a, b):
    return np.max(np.abs(a - b)) / max(1e-300, np.max(np.abs(b)))


class TestWorkspace:
    def test_thermodynamic_state(self, state):
        ws = StageWorkspace(state.shape[0], 1)
        ws.update(state)
        rho, u, v, wv, p = primitive_from_conserved(state)
        assert rel(ws.rho, rho) == 0.0
        assert rel(ws.vel, np.stack([u, v, wv], axis=1)) < 1e-14
        assert rel(ws.p, pressure(state)) < 1e-12
        assert rel(ws.c, np.sqrt(1.4 * p / rho)) < 1e-12
        assert rel(ws.epp, state[:, 4] + pressure(state)) < 1e-12

    def test_buf_reuse_and_mismatch(self):
        ws = StageWorkspace(4, 3)
        a = ws.buf("x", (3, 5))
        assert ws.buf("x", (3, 5)) is a
        assert ws.n_arena_allocs == 1
        with pytest.raises(ValueError, match="arena buffer"):
            ws.buf("x", (4, 5))


class TestAgainstSeed:
    def test_residual(self, fused, seed_solver, state):
        assert rel(fused.residual(state), seed_solver.residual(state)) < 1e-12

    def test_timestep(self, fused, seed_solver, state):
        dt = np.empty(state.shape[0])
        fused.timestep(state, out=dt, update_state=True)
        assert rel(dt, seed_solver.timestep(state)) < 1e-12

    def test_step_and_resnorm(self, fused, seed_solver, state):
        wk, resnorm = fused.step(state)
        assert rel(wk, seed_solver.step(state)) < 1e-12
        # The captured stage-0 norm is the fused pipeline's own R(w) norm.
        r = fused.residual(state)
        expect = float(np.sqrt(np.mean(
            (r[:, 0] / fused.dual_volumes) ** 2)))
        assert abs(resnorm - expect) < 1e-12 * max(expect, 1e-300)

    def test_smooth(self, fused, seed_solver, state):
        from repro.solver.smoothing import smooth_residual
        r = seed_solver.residual(state)
        out = np.empty_like(r)
        fused.smooth(r, out=out)
        ref = smooth_residual(r, seed_solver.edges, seed_solver.scatter,
                              fused.config.smoothing_eps,
                              fused.config.smoothing_sweeps,
                              freeze_mask=seed_solver.boundary_mask)
        assert rel(out, ref) < 1e-12

    def test_forcing_term(self, fused, seed_solver, state):
        rng = np.random.default_rng(3)
        forcing = 1e-3 * rng.standard_normal(state.shape)
        wk, _ = fused.step(state, forcing=forcing)
        assert rel(wk, seed_solver.step(state, forcing=forcing)) < 1e-12

    def test_colored_executor_backend(self, bump_struct, seed_solver, winf,
                                      state):
        ex = ColoredExecutor(bump_struct.edges, bump_struct.n_vertices)
        f = FusedResidual(bump_struct, BoundaryData(bump_struct),
                          seed_solver.config, winf, executor=ex)
        assert rel(f.residual(state), seed_solver.residual(state)) < 1e-12


class TestAllocationDiscipline:
    def test_arena_stops_growing(self, bump_struct, winf, state):
        f = FusedResidual(bump_struct, BoundaryData(bump_struct),
                          SolverConfig(), winf)
        w, _ = f.step(state)
        warm = f.ws.n_arena_allocs
        for _ in range(3):
            w, _ = f.step(w)
        assert f.ws.n_arena_allocs == warm
