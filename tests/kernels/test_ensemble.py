"""Batched ensemble pipeline: per-scenario bit-identity vs sequential.

The contract under test (see ``repro/kernels/ensemble.py``): scenario
``s`` of a batched solve is **bit-identical** to a sequential
``executor="fused"`` solve at that scenario's conditions — at any batch
width, with any early-exit pattern around it, across mid-run compaction.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.kernels.ensemble import (EnsembleResidual, EnsembleWorkspace,
                                    batch_major, scenario_major)
from repro.solver import EulerSolver, FlowState, SolverConfig

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])

FUSED = SolverConfig(executor="fused")


@pytest.fixture(scope="module")
def base_solver(bump_struct, winf):
    return EulerSolver(bump_struct, winf, FUSED)


def sequential_trajectory(solver, flow, n_cycles):
    """Reference: states + entering norms from the plain fused step loop."""
    cfg = FUSED if flow.cfl is None else \
        dataclasses.replace(FUSED, cfl=float(flow.cfl))
    seq = EulerSolver(None, flow.freestream(), cfg, assets=solver.assets)
    w = seq.freestream_solution()
    states, norms = [w], []
    for _ in range(n_cycles):
        w = seq.step(w)
        norms.append(seq.last_step_residual_norm)
        states.append(w)
    return states, norms


# ---------------------------------------------------------------------------
class TestLayout:
    def test_round_trip(self):
        rng = np.random.default_rng(3)
        w = rng.standard_normal((7, 11, 5))
        wT = batch_major(w)
        assert wT.shape == (11, 5, 7)
        assert wT.flags.c_contiguous
        assert np.array_equal(scenario_major(wT), w)

    def test_batch_major_validates(self):
        with pytest.raises(ValueError, match="expected"):
            batch_major(np.zeros((4, 5)))
        with pytest.raises(ValueError, match="expected"):
            batch_major(np.zeros((2, 7, 4)))

    def test_workspace_arena(self):
        ws = EnsembleWorkspace(4, 6, 3)
        a = ws.edge_buf("x", 5)
        assert a.shape == (6, 5, 3)
        assert ws.edge_buf("x", 5) is a
        assert ws.n_arena_allocs == 1
        with pytest.raises(ValueError, match="arena buffer"):
            ws.buf("x", (2, 2))


# ---------------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("batch", [2, 5, 64])
    def test_step_matches_sequential(self, base_solver, batch):
        machs = np.linspace(0.3, 0.8, batch)
        flows = [FlowState(m, alpha_deg=1.116) for m in machs]
        pipe = EnsembleResidual(
            base_solver.struct, base_solver.bdata, FUSED,
            np.stack([f.freestream() for f in flows]),
            executor=base_solver._ensemble_executor())
        wT = batch_major(np.stack([
            np.broadcast_to(f.freestream(), (base_solver.n_vertices, 5))
            for f in flows]))
        for cycle in range(3):
            wT, norms = pipe.step(wT)
            norms = norms.copy()
            per = scenario_major(wT)
            for s, f in enumerate(flows):
                states, seq_norms = sequential_trajectory(
                    base_solver, f, cycle + 1)
                assert norms[s] == seq_norms[cycle]
                assert np.array_equal(per[s], states[-1])

    def test_solve_ensemble_batch_of_one_is_sequential(self, base_solver):
        flow = FlowState(0.6, alpha_deg=1.116)
        res = base_solver.solve_ensemble([flow], n_cycles=4)
        seq = EulerSolver(None, flow.freestream(), FUSED,
                          assets=base_solver.assets)
        w, history = seq.run(n_cycles=4)
        assert np.array_equal(res.states[0], w)
        assert res.histories[0] == history
        assert res.cycles[0] == 4

    def test_solve_ensemble_matches_run(self, base_solver):
        flows = FlowState.grid(np.linspace(0.4, 0.75, 5), (0.0, 1.116))
        res = base_solver.solve_ensemble(flows, n_cycles=4, block_size=4)
        for s, f in enumerate(flows):
            seq = EulerSolver(None, f.freestream(), FUSED,
                              assets=base_solver.assets)
            w, history = seq.run(n_cycles=4)
            assert np.array_equal(res.states[s], w), f"scenario {s}"
            assert res.histories[s] == history

    @given(batch=st.integers(1, 6), n_cycles=st.integers(0, 3),
           block_size=st.integers(1, 4), seed=st.integers(0, 1000))
    @settings(max_examples=12, **COMMON)
    def test_random_conditions_bitwise(self, base_solver, batch, n_cycles,
                                       block_size, seed):
        rng = np.random.default_rng(seed)
        flows = [FlowState(float(m), float(a))
                 for m, a in zip(rng.uniform(0.3, 0.85, batch),
                                 rng.uniform(-2.0, 2.0, batch))]
        res = base_solver.solve_ensemble(flows, n_cycles=n_cycles,
                                         block_size=block_size)
        for s, f in enumerate(flows):
            states, norms = sequential_trajectory(base_solver, f, n_cycles)
            assert np.array_equal(res.states[s], states[-1])
            assert res.histories[s][:-1] == norms

    def test_per_scenario_cfl(self, base_solver):
        flow = FlowState(0.55, alpha_deg=1.116, cfl=2.0)
        res = base_solver.solve_ensemble(
            [FlowState(0.55, alpha_deg=1.116), flow], n_cycles=3,
            block_size=2)
        cfg = dataclasses.replace(FUSED, cfl=2.0)
        seq = EulerSolver(None, flow.freestream(), cfg,
                          assets=base_solver.assets)
        w, history = seq.run(n_cycles=3)
        assert np.array_equal(res.states[1], w)
        assert res.histories[1] == history
        assert not np.array_equal(res.states[0], res.states[1])


# ---------------------------------------------------------------------------
class TestEarlyExit:
    def test_converged_mask_freezes_and_leaves_others_bitwise(
            self, base_solver):
        # Per-scenario CFL staggers the convergence pace, so scenarios
        # cross the rtol threshold at different cycles.
        flows = [FlowState(0.6, alpha_deg=1.116, cfl=c)
                 for c in (4.0, 2.5, 1.5, 0.8)]
        n_cycles = 6
        # Reference: replicate the driver's exit policy sequentially.
        trajs = [sequential_trajectory(base_solver, f, n_cycles)
                 for f in flows]
        rtol = 0.55
        res = base_solver.solve_ensemble(flows, n_cycles=n_cycles,
                                         rtol=rtol, block_size=4)
        exit_cycles = set()
        for s, (states, norms) in enumerate(trajs):
            exit_cycle = n_cycles
            for c, rn in enumerate(norms):
                if rn <= rtol * norms[0]:
                    exit_cycle = c
                    break
            exit_cycles.add(exit_cycle)
            if exit_cycle < n_cycles:
                assert res.converged[s]
                assert res.cycles[s] == exit_cycle
                # Frozen at the *entering* state of the exit cycle.
                assert np.array_equal(res.states[s], states[exit_cycle])
                assert res.histories[s] == norms[:exit_cycle + 1]
            else:
                assert not res.converged[s]
                assert res.cycles[s] == n_cycles
                assert np.array_equal(res.states[s], states[-1])
                assert res.histories[s][:-1] == norms
        # The fixture must actually exercise a staggered mask (scenarios
        # exiting at different cycles while others keep stepping).
        assert len(exit_cycles) > 1

    def test_divergent_scenario_is_flagged_not_fatal(self, base_solver):
        flows = [FlowState(0.6, alpha_deg=1.116),
                 FlowState(0.6, alpha_deg=1.116, cfl=1e12),
                 FlowState(0.45, alpha_deg=0.0)]
        with np.errstate(invalid="ignore", over="ignore"):
            res = base_solver.solve_ensemble(flows, n_cycles=5, block_size=4)
        assert res.diverged[1] and not res.diverged[0] \
            and not res.diverged[2]
        for s in (0, 2):
            states, norms = sequential_trajectory(
                base_solver, flows[s], 5)
            assert np.array_equal(res.states[s], states[-1])


# ---------------------------------------------------------------------------
class TestDiscipline:
    def test_arena_stops_growing(self, base_solver, winf):
        pipe = EnsembleResidual(base_solver.struct, base_solver.bdata,
                                FUSED, np.tile(winf, (3, 1)),
                                executor=base_solver._ensemble_executor())
        wT = batch_major(np.broadcast_to(
            winf, (3, base_solver.n_vertices, 5)).copy())
        wT, _ = pipe.step(wT)
        warm = pipe.ws.n_arena_allocs
        for _ in range(3):
            wT, _ = pipe.step(wT)
        assert pipe.ws.n_arena_allocs == warm

    def test_resnorms_buffer_reused(self, base_solver, winf):
        pipe = EnsembleResidual(base_solver.struct, base_solver.bdata,
                                FUSED, np.tile(winf, (2, 1)),
                                executor=base_solver._ensemble_executor())
        wT = batch_major(np.broadcast_to(
            winf, (2, base_solver.n_vertices, 5)).copy())
        _, n1 = pipe.step(wT)
        _, n2 = pipe.step(wT)
        assert n1 is n2
