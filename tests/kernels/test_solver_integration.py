"""EulerSolver / SolverConfig wiring of the fused kernel layer."""

import numpy as np
import pytest

from repro.solver import EulerSolver, SolverConfig


@pytest.fixture(scope="module")
def perturbed(bump_struct, winf):
    s = EulerSolver(bump_struct, winf, SolverConfig())
    rng = np.random.default_rng(11)
    w = s.freestream_solution()
    return w * (1.0 + 0.03 * rng.standard_normal(w.shape))


class TestConfig:
    def test_defaults_serial_unreordered(self):
        cfg = SolverConfig()
        assert cfg.executor == "serial"
        assert not cfg.reorder_edges_enabled

    def test_bad_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            SolverConfig(executor="vectorized")

    def test_bad_threads_rejected(self):
        with pytest.raises(ValueError, match="n_threads"):
            SolverConfig(n_threads=0)

    def test_reorder_auto_follows_executor(self):
        assert SolverConfig(executor="fused").reorder_edges_enabled
        assert not SolverConfig(executor="fused",
                                edge_reorder=False).reorder_edges_enabled
        assert SolverConfig(edge_reorder=True).reorder_edges_enabled


class TestSerialBitIdentity:
    """executor='serial' must keep the seed path byte-for-byte."""

    def test_run_history_matches_manual_monitoring(self, bump_struct, winf,
                                                   perturbed):
        s = EulerSolver(bump_struct, winf, SolverConfig())
        ref_hist, wc = [], perturbed.copy()
        for _ in range(4):
            ref_hist.append(s.density_residual_norm(wc))
            wc = s.step(wc)
        ref_hist.append(s.density_residual_norm(wc))
        s2 = EulerSolver(bump_struct, winf, SolverConfig())
        w2, hist = s2.run(perturbed.copy(), n_cycles=4)
        assert hist == ref_hist
        assert np.array_equal(w2, wc)

    def test_last_step_residual_norm_is_prestep_norm(self, bump_struct,
                                                     winf, perturbed):
        s = EulerSolver(bump_struct, winf, SolverConfig())
        expect = s.density_residual_norm(perturbed)
        s.step(perturbed)
        assert s.last_step_residual_norm == expect


class TestExecutorDispatch:
    @pytest.mark.parametrize("kind", ["fused", "colored", "colored-threaded"])
    def test_matches_serial(self, bump_struct, winf, perturbed, kind):
        s = EulerSolver(bump_struct, winf, SolverConfig())
        sf = EulerSolver(bump_struct, winf,
                         SolverConfig(executor=kind, n_threads=2))
        assert sf.fused is not None
        w_ref, h_ref = s.run(perturbed.copy(), n_cycles=3)
        w_f, h_f = sf.run(perturbed.copy(), n_cycles=3)
        assert np.max(np.abs(w_f - w_ref)) < 1e-12 * np.max(np.abs(w_ref))
        for a, b in zip(h_f, h_ref):
            assert abs(a - b) < 1e-10 * abs(b)

    def test_threaded_matches_unthreaded_bitwise(self, bump_struct, winf,
                                                 perturbed):
        results = []
        for n_threads in (1, 2, 4):
            sf = EulerSolver(bump_struct, winf,
                             SolverConfig(executor="colored-threaded",
                                          n_threads=n_threads))
            results.append(sf.step(perturbed))
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[0], results[2])

    def test_residual_and_timestep_routed(self, bump_struct, winf,
                                          perturbed):
        s = EulerSolver(bump_struct, winf, SolverConfig())
        sf = EulerSolver(bump_struct, winf, SolverConfig(executor="fused"))
        assert np.max(np.abs(sf.residual(perturbed) - s.residual(perturbed))
                      ) < 1e-12 * np.max(np.abs(s.residual(perturbed)))
        assert np.max(np.abs(sf.timestep(perturbed) - s.timestep(perturbed))
                      ) < 1e-12 * np.max(np.abs(s.timestep(perturbed)))
