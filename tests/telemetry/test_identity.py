"""Tracing must not perturb the numerics: bit-identical solver states.

The telemetry layer only *observes* — a run with a live :class:`Tracer`
must produce exactly the same floating-point state, bit for bit, as a
run with the default :class:`NullTracer`.  Property-based over initial
conditions and solver configurations.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mesh import box_mesh
from repro.solver import EulerSolver, SolverConfig
from repro.state import freestream_state
from repro.telemetry import Tracer, use_tracer

_MESH = box_mesh(3, 3, 3)
_WINF = freestream_state(0.768, 1.116)


def _run(executor: str, seed: int, n_cycles: int, tracer=None):
    config = SolverConfig(executor=executor, n_threads=2)
    if tracer is None:
        solver = EulerSolver(_MESH, _WINF, config)
    else:
        with use_tracer(tracer):
            solver = EulerSolver(_MESH, _WINF, config)
    rng = np.random.default_rng(seed)
    w0 = solver.freestream_solution()
    w0 *= 1.0 + 0.02 * rng.standard_normal(w0.shape)
    w, history = solver.run(w0, n_cycles=n_cycles)
    return w, history


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       executor=st.sampled_from(["serial", "fused"]))
def test_traced_run_bit_identical(seed, executor):
    tracer = Tracer()
    w_plain, h_plain = _run(executor, seed, n_cycles=2)
    w_traced, h_traced = _run(executor, seed, n_cycles=2, tracer=tracer)
    np.testing.assert_array_equal(w_plain, w_traced)
    assert h_plain == h_traced
    assert tracer.n_recorded > 0          # tracing actually happened


@pytest.mark.parametrize("executor", ["colored", "colored-threaded"])
def test_traced_run_bit_identical_colored(executor):
    tracer = Tracer()
    w_plain, h_plain = _run(executor, seed=7, n_cycles=2)
    w_traced, h_traced = _run(executor, seed=7, n_cycles=2, tracer=tracer)
    np.testing.assert_array_equal(w_plain, w_traced)
    assert h_plain == h_traced
    assert tracer.n_recorded > 0


def test_traced_distributed_step_bit_identical():
    from repro.distsolver import DistributedEulerSolver
    from repro.mesh import build_edge_structure
    from repro.parti import SimMachine
    from repro.partition import recursive_spectral_bisection

    struct = build_edge_structure(_MESH)
    assignment = recursive_spectral_bisection(struct.edges,
                                              struct.n_vertices, 2)

    def one_step(tracer):
        machine = SimMachine(2, tracer=tracer)
        dist = DistributedEulerSolver(struct, _WINF, assignment,
                                      SolverConfig(), machine=machine)
        w = dist.freestream_solution()
        rng = np.random.default_rng(11)
        noise = 1.0 + 0.02 * rng.standard_normal(
            (struct.n_vertices, 5))
        w_global = dist.collect(w) * noise
        w = dist.distribute(w_global)
        return dist.collect(dist.step(w))

    w_plain = one_step(None)
    tracer = Tracer()
    w_traced = one_step(tracer)
    np.testing.assert_array_equal(w_plain, w_traced)
    assert tracer.n_recorded > 0
