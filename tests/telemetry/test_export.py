"""Exporters: JSON-lines, Chrome trace format, summary aggregation."""

import json

import pytest

from repro.telemetry import TracePayload, Tracer
from repro.telemetry.export import (aggregate, all_payloads,
                                    chrome_trace_events, format_counters,
                                    format_summary, write_chrome_trace,
                                    write_jsonl)


@pytest.fixture()
def simple_tracer():
    t = Tracer()
    with t.span("outer"):
        with t.span("inner"):
            pass
        with t.span("inner"):
            pass
    t.count("bytes", 123)
    t.gauge("occupancy", 0.5)
    return t


class TestJsonl:
    def test_roundtrip(self, simple_tracer, tmp_path):
        path = tmp_path / "trace.jsonl"
        n = write_jsonl(simple_tracer, path)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == n
        kinds = {l["type"] for l in lines}
        assert kinds == {"meta", "span", "counter", "gauge"}
        spans = [l for l in lines if l["type"] == "span"]
        assert [s["name"] for s in spans] == ["inner", "inner", "outer"]
        counter = next(l for l in lines if l["type"] == "counter")
        assert counter["name"] == "bytes" and counter["value"] == 123

    def test_span_times_relative_and_ordered(self, simple_tracer, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(simple_tracer, path)
        spans = [json.loads(l) for l in path.read_text().splitlines()
                 if json.loads(l)["type"] == "span"]
        for s in spans:
            assert 0.0 <= s["t0"] <= s["t1"]


class TestChromeTrace:
    def test_loadable_json_with_x_events(self, simple_tracer, tmp_path):
        path = tmp_path / "trace.json"
        n = write_chrome_trace(simple_tracer, path)
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc
        events = doc["traceEvents"]
        assert len(events) == n
        x_events = [e for e in events if e["ph"] == "X"]
        assert len(x_events) == 3
        for e in x_events:
            assert e["dur"] >= 0.0
            assert set(e) >= {"name", "ph", "pid", "tid", "ts", "dur"}

    def test_counter_event_present(self, simple_tracer):
        events = chrome_trace_events(simple_tracer)
        c = [e for e in events if e["ph"] == "C"]
        assert len(c) == 1
        assert c[0]["args"] == {"bytes": 123.0}

    def test_merged_payloads_get_distinct_pids(self, simple_tracer):
        remote = Tracer()
        with remote.span("work"):
            pass
        simple_tracer.remote_payloads.append(
            remote.to_payload(pid=1, label="rank0"))
        payloads = all_payloads(simple_tracer)
        pids = [p.pid for p in payloads]
        assert len(set(pids)) == len(pids)
        events = chrome_trace_events(simple_tracer)
        proc = [e for e in events if e["name"] == "process_name"]
        assert proc and proc[0]["args"] == {"name": "rank0"}


class TestAggregate:
    def test_self_time_excludes_children(self):
        t = Tracer()
        with t.span("parent"):
            with t.span("child"):
                pass
        stats = aggregate(t)
        p, c = stats["parent"], stats["child"]
        assert p["count"] == 1 and c["count"] == 1
        assert p["total_s"] >= c["total_s"]
        assert p["self_s"] == pytest.approx(p["total_s"] - c["total_s"])
        assert c["self_s"] == pytest.approx(c["total_s"])

    def test_self_times_sum_to_root_total(self):
        t = Tracer()
        with t.span("root"):
            for _ in range(3):
                with t.span("a"):
                    with t.span("b"):
                        pass
        stats = aggregate(t)
        total_self = sum(row["self_s"] for row in stats.values())
        assert total_self == pytest.approx(stats["root"]["total_s"],
                                           rel=1e-9)

    def test_payload_list_merge(self):
        p1 = _payload_with("a", pid=0)
        p2 = _payload_with("a", pid=1)
        stats = aggregate([p1, p2])
        assert stats["a"]["count"] == 2


def _payload_with(name: str, pid: int) -> TracePayload:
    t = Tracer()
    with t.span(name):
        pass
    return t.to_payload(pid=pid)


class TestSummaryTable:
    def test_table_contains_phases_and_wall_clock(self, simple_tracer):
        text = format_summary(simple_tracer)
        assert "outer" in text and "inner" in text
        assert "wall-clock" in text and "total (self)" in text

    def test_self_total_matches_wall_on_single_thread(self):
        t = Tracer()
        with t.span("root"):
            with t.span("leaf"):
                x = 0.0
                for i in range(10000):
                    x += i
        stats = aggregate(t)
        total_self = sum(r["self_s"] for r in stats.values())
        assert total_self == pytest.approx(t.wall_time(), rel=0.05)

    def test_counters_table(self, simple_tracer):
        text = format_counters(simple_tracer)
        assert "bytes" in text and "occupancy" in text

    def test_empty_tracer_safe(self):
        t = Tracer()
        assert "wall-clock" in format_summary(t)
        assert write_jsonl(t, "/dev/null") >= 1
        assert chrome_trace_events(t) == []
