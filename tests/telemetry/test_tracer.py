"""Tracer core: nesting, ring buffer, metrics, thread safety."""

import threading

import numpy as np
import pytest

from repro.kernels import ColoredExecutor
from repro.telemetry import (NULL_TRACER, CounterStore, GaugeStats,
                             NullTracer, Tracer, get_tracer, set_tracer,
                             traced, use_tracer)


class TestNullTracer:
    def test_span_is_shared_noop(self):
        t = NullTracer()
        s1 = t.span("a")
        s2 = t.span("b")
        assert s1 is s2
        with s1:
            pass

    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer().enabled is True

    def test_metrics_are_noops(self):
        t = NullTracer()
        t.count("x", 5)
        t.gauge("y", 1.0)
        assert t.counters() == {}
        assert t.gauges() == {}


class TestSpanRecording:
    def test_names_and_depths(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
            with t.span("inner"):
                pass
        recs = t.records()
        names = t.names()
        got = [(names[r["name"]], int(r["depth"])) for r in recs]
        # Children complete before the parent.
        assert got == [("inner", 1), ("inner", 1), ("outer", 0)]

    def test_intervals_nest(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        recs = t.records()
        inner, outer = recs[0], recs[1]
        assert outer["t0"] <= inner["t0"] <= inner["t1"] <= outer["t1"]

    def test_name_interning(self):
        t = Tracer()
        for _ in range(10):
            with t.span("same"):
                pass
        assert t.names() == ["same"]
        assert t.n_spans == 10

    def test_handle_reuse_no_steadystate_allocation(self):
        t = Tracer()
        with t.span("a"):
            pass
        handle = t.span("b")
        with handle:
            pass
        # Same depth -> the pooled handle object is reused.
        assert t.span("c") is handle
        t._finish_span(handle, handle.t0)

    def test_exception_still_closes_span(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            with t.span("boom"):
                raise RuntimeError("x")
        assert t.n_spans == 1
        # Depth unwound: next span starts at depth 0 again.
        with t.span("after"):
            pass
        assert int(t.records()[-1]["depth"]) == 0


class TestRingBuffer:
    def test_wraparound_keeps_newest(self):
        t = Tracer(capacity=4)
        for i in range(10):
            with t.span(f"s{i}"):
                pass
        recs = t.records()
        assert recs.size == 4
        assert t.n_dropped == 6
        assert t.n_recorded == 10
        names = t.names()
        assert [names[r["name"]] for r in recs] == ["s6", "s7", "s8", "s9"]

    def test_records_are_time_ordered_after_wrap(self):
        t = Tracer(capacity=3)
        for i in range(7):
            with t.span("s"):
                pass
        recs = t.records()
        assert np.all(np.diff(recs["t0"]) >= 0)

    def test_reset(self):
        t = Tracer()
        with t.span("a"):
            t.count("c", 1)
        t.reset()
        assert t.n_spans == 0
        assert t.counters() == {}

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestMetrics:
    def test_counter_accumulates(self):
        t = Tracer()
        t.count("edges", 10)
        t.count("edges", 5)
        assert t.counters() == {"edges": 15.0}

    def test_gauge_stats(self):
        t = Tracer()
        for v in (1.0, 3.0, 2.0):
            t.gauge("g", v)
        g = t.gauges()["g"]
        assert g["last"] == 2.0
        assert g["min"] == 1.0
        assert g["max"] == 3.0
        assert g["mean"] == pytest.approx(2.0)
        assert g["count"] == 3

    def test_counter_store_threadsafe_total(self):
        store = CounterStore()

        def work():
            for _ in range(1000):
                store.add("k", 1)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert store.get("k") == 4000

    def test_gauge_stats_slots(self):
        g = GaugeStats()
        g.observe(2.0)
        assert g.mean == 2.0


class TestGlobalTracer:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_use_tracer_scoped(self):
        t = Tracer()
        with use_tracer(t):
            assert get_tracer() is t
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_restores_null(self):
        t = Tracer()
        set_tracer(t)
        try:
            assert get_tracer() is t
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER

    def test_traced_decorator(self):
        class Obj:
            def __init__(self, tracer):
                self.tracer = tracer

            @traced("obj.work")
            def work(self, x):
                return x + 1

        t = Tracer()
        assert Obj(t).work(1) == 2
        assert t.names() == ["obj.work"]
        assert Obj(NULL_TRACER).work(1) == 2


class TestThreadedExecutorSpans:
    """Span nesting/ordering under the colored-threaded executor."""

    @pytest.fixture(scope="class")
    def traced_run(self, bump_struct):
        tracer = Tracer()
        ex = ColoredExecutor(bump_struct.edges, bump_struct.n_vertices,
                             n_threads=2, tracer=tracer)
        values = np.linspace(0.0, 1.0, bump_struct.n_edges)
        with tracer.span("driver"):
            out = ex.signed(values)
        ex.close()
        return tracer, out

    def test_worker_spans_recorded(self, traced_run):
        tracer, _ = traced_run
        recs = tracer.records()
        names = tracer.names()
        by_name = {}
        for r in recs:
            by_name.setdefault(names[r["name"]], []).append(r)
        assert "scatter.subgroup" in by_name
        assert "scatter.signed" in by_name
        assert "driver" in by_name
        # Subgroup work lands on worker threads, not the driver's tid.
        driver_tid = int(by_name["driver"][0]["tid"])
        worker_tids = {int(r["tid"]) for r in by_name["scatter.subgroup"]}
        assert driver_tid not in worker_tids

    def test_per_thread_strict_nesting(self, traced_run):
        tracer, _ = traced_run
        recs = tracer.records()
        for tid in np.unique(recs["tid"]):
            spans = recs[recs["tid"] == tid]
            spans = spans[np.argsort(spans["t0"], kind="stable")]
            stack = []
            for i in range(spans.size):
                while stack and spans["t0"][i] >= spans["t1"][stack[-1]]:
                    stack.pop()
                if stack:
                    # Strictly nested: child contained in open parent.
                    assert spans["t1"][i] <= spans["t1"][stack[-1]] + 1e-12
                assert int(spans["depth"][i]) == len(stack)
                stack.append(i)

    def test_result_matches_untraced(self, traced_run, bump_struct):
        _, out = traced_run
        ex = ColoredExecutor(bump_struct.edges, bump_struct.n_vertices,
                             n_threads=2)
        values = np.linspace(0.0, 1.0, bump_struct.n_edges)
        ref = ex.signed(values)
        ex.close()
        np.testing.assert_array_equal(out, ref)
