"""Counter accuracy: PARTI byte counters vs independent hand counts.

The telemetry counters must agree with quantities computed a second way:
the schedule's own index arrays (for packed bytes) and the SimMachine
traffic log (for wire bytes) — two independent accountings of the same
communication.
"""

import numpy as np
import pytest

from repro.distsolver import DistributedEulerSolver
from repro.mesh import box_mesh, build_edge_structure
from repro.parti import SimMachine, build_gather_schedule
from repro.parti.incremental import IncrementalScheduleBuilder
from repro.parti.translation import TranslationTable
from repro.partition import recursive_spectral_bisection
from repro.solver import SolverConfig
from repro.telemetry import Tracer


@pytest.fixture(scope="module")
def two_rank_box():
    """A 2-rank partitioned box mesh with its schedule and machine."""
    mesh = box_mesh(4, 4, 4)
    struct = build_edge_structure(mesh)
    assignment = recursive_spectral_bisection(struct.edges,
                                              struct.n_vertices, 2)
    return struct, assignment


def _crossing_schedule(struct, assignment):
    table = TranslationTable(assignment)
    required = []
    for r in range(2):
        owners = assignment[struct.edges]
        mine = (owners[:, 0] == r) | (owners[:, 1] == r)
        required.append(struct.edges[mine].ravel())
    return table, build_gather_schedule(required, table, name="test")


class TestGatherScatterBytes:
    def test_gather_packed_bytes_match_hand_count(self, two_rank_box):
        struct, assignment = two_rank_box
        table, schedule = _crossing_schedule(struct, assignment)
        tracer = Tracer()
        machine = SimMachine(2, tracer=tracer)
        owned = [np.random.default_rng(r).standard_normal(
            (table.n_owned[r], 5)) for r in range(2)]

        schedule.gather(machine, owned, phase="ghosts")

        # Hand count: every send_indices entry is packed once, 5 doubles
        # per element.
        expected = sum(idx.size for idx in schedule.send_indices.values()) \
            * 5 * 8
        counters = tracer.counters()
        assert counters["parti.gather.bytes_packed"] == expected
        # Packed bytes equal wire bytes here (no src==dst entries), and
        # the SimMachine traffic log counts them independently.
        assert counters["comm.ghosts.bytes"] == expected
        assert machine.log.phase("ghosts").total_bytes == expected
        assert counters["comm.ghosts.msgs"] == \
            machine.log.phase("ghosts").total_msgs

    def test_scatter_add_bytes_match_hand_count(self, two_rank_box):
        struct, assignment = two_rank_box
        table, schedule = _crossing_schedule(struct, assignment)
        tracer = Tracer()
        machine = SimMachine(2, tracer=tracer)
        owned = [np.zeros((table.n_owned[r], 5)) for r in range(2)]
        ghost = [np.ones((schedule.ghost_globals[r].size, 5))
                 for r in range(2)]

        schedule.scatter_add(machine, ghost, owned, phase="resid")

        expected = sum((stop - start) for start, stop
                       in schedule.recv_slices.values()) * 5 * 8
        counters = tracer.counters()
        assert counters["parti.scatter_add.bytes_packed"] == expected
        assert counters["comm.resid.bytes"] == expected
        assert machine.log.phase("resid").total_bytes == expected

    def test_gather_values_unchanged_by_pack_buffers(self, two_rank_box):
        """The preallocated pack buffers must not change delivered data."""
        struct, assignment = two_rank_box
        table, schedule = _crossing_schedule(struct, assignment)
        machine = SimMachine(2)
        owned = [np.random.default_rng(10 + r).standard_normal(
            (table.n_owned[r], 5)) for r in range(2)]
        ghosts = schedule.gather(machine, owned)
        for r in range(2):
            expect = owned[1 - r][
                table.local_of(schedule.ghost_globals[r])]
            np.testing.assert_array_equal(ghosts[r], expect)
        # Second call reuses the buffers; results stay exact.
        ghosts2 = schedule.gather(machine, owned)
        for g1, g2 in zip(ghosts, ghosts2):
            np.testing.assert_array_equal(g1, g2)

    def test_pack_buffers_are_reused(self, two_rank_box):
        struct, assignment = two_rank_box
        table, schedule = _crossing_schedule(struct, assignment)
        machine = SimMachine(2)
        owned = [np.zeros((table.n_owned[r], 5)) for r in range(2)]
        schedule.gather(machine, owned)
        bufs_before = {k: id(v) for k, v in schedule._pack_buffers.items()}
        schedule.gather(machine, owned)
        bufs_after = {k: id(v) for k, v in schedule._pack_buffers.items()}
        assert bufs_before == bufs_after
        assert len(bufs_before) == len(schedule.send_indices)


class TestSolverPhaseCounters:
    def test_step_routes_phases_into_counters(self, two_rank_box, winf):
        """One distributed step: counters mirror the traffic log per phase."""
        struct, assignment = two_rank_box
        tracer = Tracer()
        machine = SimMachine(2, tracer=tracer)
        dist = DistributedEulerSolver(struct, winf, assignment,
                                      SolverConfig(), machine=machine)
        w = dist.freestream_solution()
        dist.step(w)

        counters = tracer.counters()
        phases = machine.log.phases
        assert "w-gather" in phases and "q-scatter" in phases
        for name, traffic in phases.items():
            assert counters["comm." + name + ".bytes"] == \
                traffic.total_bytes, name
            assert counters["comm." + name + ".msgs"] == \
                traffic.total_msgs, name


class TestIncrementalDedupCounters:
    def test_hit_rate_counted(self, two_rank_box):
        struct, assignment = two_rank_box
        table = TranslationTable(assignment)
        tracer = Tracer()
        builder = IncrementalScheduleBuilder(table, tracer=tracer)
        owners = assignment[struct.edges]
        required = []
        for r in range(2):
            mine = (owners[:, 0] == r) | (owners[:, 1] == r)
            required.append(struct.edges[mine].ravel())

        builder.add(required, name="first")
        first_requested = builder.total_requested
        assert builder.total_hits == 0

        # The identical reference set again: everything is a dedup hit.
        builder.add(required, name="second")
        assert builder.total_requested == 2 * first_requested
        assert builder.total_hits == first_requested
        assert builder.dedup_hit_rate == pytest.approx(0.5)

        counters = tracer.counters()
        assert counters["parti.incr.ids_requested"] == 2 * first_requested
        assert counters["parti.incr.ids_new"] == first_requested
        assert tracer.gauges()["parti.incr.dedup_hit_rate"]["last"] == \
            pytest.approx(0.5)
