"""Telemetry test fixtures, plus the CI trace artifact hook.

When ``TELEMETRY_TRACE_DIR`` is set (CI does this), the test session
finishes by running a small traced solve and writing the JSON-lines and
Chrome-trace dumps there — the artifact CI uploads, so every CI run
leaves an openable trace produced by the code under test.
"""

import os
from pathlib import Path

import pytest


@pytest.fixture(scope="session", autouse=True)
def telemetry_session_artifact():
    yield
    out = os.environ.get("TELEMETRY_TRACE_DIR")
    if not out:
        return
    from repro.mesh import box_mesh
    from repro.solver import EulerSolver, SolverConfig
    from repro.state import freestream_state
    from repro.telemetry import Tracer, use_tracer
    from repro.telemetry.export import write_chrome_trace, write_jsonl

    tracer = Tracer()
    with use_tracer(tracer):
        solver = EulerSolver(box_mesh(4, 4, 4),
                             freestream_state(0.768, 1.116),
                             SolverConfig(executor="fused"))
    solver.run(n_cycles=2)
    path = Path(out)
    path.mkdir(parents=True, exist_ok=True)
    write_jsonl(tracer, path / "suite_trace.jsonl")
    write_chrome_trace(tracer, path / "suite_trace.json")
