"""Round-trip the exporter trio on one crafted multi-thread payload.

The payload exercises the two cases the exporters historically got
wrong: spans recorded in *completion* order (child lands in the buffer
before its parent), and a parent/child pair starting at the exact same
timestamp — where a stable start-time sort alone would invert the
nesting in both the Chrome trace and the self-time attribution.
"""

import json
import threading

import numpy as np
import pytest

from repro.telemetry import TracePayload, Tracer
from repro.telemetry.tracer import SPAN_DTYPE
from repro.telemetry.export import (aggregate, chrome_trace_events,
                                    format_summary, write_chrome_trace,
                                    write_jsonl)


@pytest.fixture()
def crafted_payload():
    """Two threads; thread 0 has an exact-t0 parent/child tie.

    Records are listed in completion order, as the ring buffer stores
    them: children complete (and land) before their parents.
    """
    names = ["root", "child", "worker"]
    records = np.array(
        [(1, 0, 1, 0.0, 0.4),    # child: same t0 as its parent
         (0, 0, 0, 0.0, 1.0),    # root completes last on thread 0
         (2, 1, 0, 0.1, 0.3),
         (2, 1, 0, 0.5, 0.6)],
        dtype=SPAN_DTYPE)
    return TracePayload(
        names=names, records=records,
        counters={"bytes": 10.0},
        gauges={"rate": {"last": 2.0, "min": 1.0, "max": 3.0,
                         "mean": 2.0, "count": 2}},
        pid=0, label="crafted")


class TestJsonlRoundTrip:
    def test_spans_counters_gauges_survive(self, crafted_payload, tmp_path):
        path = tmp_path / "trace.jsonl"
        n = write_jsonl(crafted_payload, path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == n
        meta = next(line for line in lines if line["type"] == "meta")
        assert meta["n_spans"] == 4 and meta["label"] == "crafted"
        spans = [line for line in lines if line["type"] == "span"]
        got = {(s["name"], s["tid"], s["t0"], s["t1"]) for s in spans}
        want = {("child", 0, 0.0, 0.4), ("root", 0, 0.0, 1.0),
                ("worker", 1, 0.1, 0.3), ("worker", 1, 0.5, 0.6)}
        assert got == want
        counter = next(line for line in lines if line["type"] == "counter")
        assert (counter["name"], counter["value"]) == ("bytes", 10.0)
        gauge = next(line for line in lines if line["type"] == "gauge")
        assert gauge["name"] == "rate" and gauge["mean"] == 2.0


class TestChromeRoundTrip:
    def test_thread_rows_and_tie_ordering(self, crafted_payload, tmp_path):
        path = tmp_path / "trace.json"
        n = write_chrome_trace(crafted_payload, path)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        assert len(events) == n
        x_events = [e for e in events if e["ph"] == "X"]
        # Spans from different threads land on distinct tid rows.
        assert {e["tid"] for e in x_events} == {0, 1}
        # ... and every tid row carries a thread_name metadata event.
        thread_names = {e["tid"] for e in events
                        if e["name"] == "thread_name"}
        assert thread_names == {0, 1}
        # On the exact-t0 tie the enclosing span precedes its child,
        # despite the completion-order buffer listing the child first.
        order = [e["name"] for e in x_events if e["tid"] == 0]
        assert order == ["root", "child"]

    def test_sorted_by_pid_tid_ts(self, crafted_payload):
        x_events = [e for e in chrome_trace_events(crafted_payload)
                    if e["ph"] == "X"]
        keys = [(e["pid"], e["tid"], e["ts"]) for e in x_events]
        assert keys == sorted(keys)


class TestSummaryRoundTrip:
    def test_tie_attribution_exact(self, crafted_payload):
        stats = aggregate(crafted_payload)
        assert stats["root"]["total_s"] == pytest.approx(1.0)
        # The same-start child is contained, not a sibling: root's self
        # time excludes it.
        assert stats["root"]["self_s"] == pytest.approx(0.6)
        assert stats["child"]["self_s"] == pytest.approx(0.4)
        assert stats["worker"]["count"] == 2
        assert stats["worker"]["self_s"] == pytest.approx(0.3)

    def test_format_summary_lists_all_phases(self, crafted_payload):
        text = format_summary(crafted_payload, wall_s=1.0)
        for name in ("root", "child", "worker"):
            assert name in text


class TestLiveMultiThread:
    def test_concurrent_threads_get_distinct_tids(self, tmp_path):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work():
            barrier.wait()
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        events = chrome_trace_events(tracer)
        x_tids = {e["tid"] for e in events if e["ph"] == "X"}
        assert len(x_tids) == 2
        # Self-time attribution never goes negative even with both
        # threads' spans interleaved in the buffer.
        stats = aggregate(tracer)
        assert stats["outer"]["count"] == 2
        assert stats["outer"]["self_s"] >= 0.0
        assert stats["inner"]["self_s"] >= 0.0
