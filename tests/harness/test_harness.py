"""Tests for the experiment harness (fast case only — speed)."""

import numpy as np
import pytest

from repro.harness import (FAST_CASE, build_hierarchy, fig1_cycle_diagrams,
                           fig3_mesh_report, format_cycle_diagram,
                           format_table1, format_table2, table1, table2)
from repro.harness.paper_data import (TABLE_1A, TABLE_1C, TABLE_2A,
                                      TEXT_CLAIMS)
from repro.harness.workloads import (measure_level_flops, mg_visits)


class TestWorkloads:
    def test_hierarchy_cached(self):
        assert build_hierarchy(FAST_CASE) is build_hierarchy(FAST_CASE)

    def test_level_flops_decreasing(self):
        h = build_hierarchy(FAST_CASE)
        flops = measure_level_flops(h)
        assert all(np.diff(flops) < 0)

    def test_mg_visits(self):
        assert mg_visits(4, 1) == [1, 1, 1, 1]
        assert mg_visits(4, 2) == [1, 2, 4, 4]
        assert mg_visits(1, 2) == [1]


class TestPaperData:
    def test_table_shapes(self):
        assert len(TABLE_1A) == 5 and len(TABLE_2A) == 2
        assert TABLE_1A[0][0] == 1 and TABLE_1A[-1][0] == 16

    def test_paper_internal_consistency(self):
        # MFlops ~ total flops / wall must be consistent within each table:
        # flops = wall * rate should be roughly constant down the rows.
        flops = [row[1] * row[3] for row in TABLE_1A]
        assert max(flops) / min(flops) < 1.1

    def test_claims_present(self):
        assert TEXT_CLAIMS["reordering_speedup"] == 2.0


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return {s: table1(s, FAST_CASE) for s in ("sg", "v", "w")}

    def test_row_structure(self, rows):
        model, paper = rows["sg"]
        assert len(model) == len(paper) == 5
        assert [m[0] for m in model] == [p[0] for p in paper]

    def test_near_linear_speedup(self, rows):
        model, _ = rows["sg"]
        walls = [m[1] for m in model]
        assert walls[0] / walls[-1] > 8.0

    def test_single_cpu_rate_close_to_paper(self, rows):
        model, paper = rows["sg"]
        assert model[0][3] == pytest.approx(paper[0][3], rel=0.10)

    def test_mg_costs_more_than_sg(self, rows):
        sg_wall = rows["sg"][0][0][1]
        v_wall = rows["v"][0][0][1]
        w_wall = rows["w"][0][0][1]
        assert sg_wall < v_wall < w_wall

    def test_rates_insensitive_to_strategy(self, rows):
        # Paper Section 3.2: all strategies achieve similar rates at
        # 16 CPUs on the C90.
        rates = [rows[s][0][-1][3] for s in ("sg", "v", "w")]
        assert max(rates) / min(rates) < 1.5

    def test_cpu_overhead_increases(self, rows):
        model, _ = rows["w"]
        cpu = [m[2] for m in model]
        assert cpu[-1] > cpu[0]

    def test_format_renders(self, rows):
        text = format_table1(*rows["sg"], "t")
        assert "wall(model)" in text


class TestTable2Fast:
    @pytest.fixture(scope="class")
    def rows(self):
        # Uncalibrated run on the fast case: cheap, still shape-bearing.
        return {s: table2(s, FAST_CASE, n_model_cycles=1, calibrated=False)
                for s in ("sg", "v", "w")}

    def test_row_structure(self, rows):
        model, paper = rows["sg"]
        assert [m[0] for m in model] == [256, 512]
        assert len(model[0]) == 5

    def test_total_is_sum(self, rows):
        for s in ("sg", "v", "w"):
            for m in rows[s][0]:
                assert m[3] == pytest.approx(m[1] + m[2], abs=1.5)

    def test_sg_fastest_per_cycle(self, rows):
        assert rows["sg"][0][0][3] < rows["v"][0][0][3] < rows["w"][0][0][3]

    def test_rate_degrades_with_mg(self, rows):
        # Paper Section 4.4: V-cycle rates 10-15% below single grid,
        # W-cycle 25-30% below (we accept the qualitative ordering).
        assert rows["sg"][0][1][4] > rows["v"][0][1][4] > rows["w"][0][1][4]

    def test_more_nodes_faster_total(self, rows):
        for s in ("sg", "v", "w"):
            model, _ = rows[s]
            assert model[1][3] < model[0][3]

    def test_format_renders(self, rows):
        text = format_table2(*rows["sg"], "t")
        assert "comm(m)" in text


class TestFigures:
    def test_fig1_event_counts(self):
        d = fig1_cycle_diagrams(4)
        assert sum(1 for k, _ in d["V"] if k == "E") == 4
        assert sum(1 for k, _ in d["W"] if k == "E") == 11

    def test_fig1_render(self):
        d = fig1_cycle_diagrams(3)
        text = format_cycle_diagram(d["W"], 3)
        assert text.count("\n") == 2

    def test_fig3_report(self):
        rep = fig3_mesh_report(4, 4)
        assert rep["quality"].n_tets == rep["mesh"].n_tets
        assert "nodes" in rep["report"]


class TestScaffolding:
    def test_paper_levels_single_grid(self):
        from repro.harness.tables import _paper_levels
        nodes, edges = _paper_levels(4, single_grid=True)
        assert len(nodes) == 1 and nodes[0] == 804_056

    def test_paper_levels_multigrid(self):
        from repro.harness.tables import _paper_levels
        nodes, edges = _paper_levels(4, single_grid=False)
        assert len(nodes) == 4
        assert nodes[0] > nodes[1] > nodes[2] > nodes[3]
        assert edges[0] == 5_500_000

    def test_rank_map(self):
        from repro.harness.tables import DELTA_RANK_MAP
        assert DELTA_RANK_MAP[512] == 2 * DELTA_RANK_MAP[256]

    def test_ghost_ratio_positive(self):
        from repro.harness.tables import _measure_strategy
        from repro.harness.workloads import FAST_CASE
        meas = _measure_strategy("sg", FAST_CASE, 4, 1, 99)
        assert meas.level_ghost_ratio[0] > 0
        assert meas.level_flops_max[0] > 0
        assert meas.comm_phases
