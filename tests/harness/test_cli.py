"""Smoke tests for the ``python -m repro.harness`` CLI."""

import pytest

from repro.harness.__main__ import main


class TestCli:
    def test_fig1_fast(self, capsys):
        assert main(["fig1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "V-cycle structure" in out and "W-cycle structure" in out

    def test_fig3_fast(self, capsys):
        assert main(["fig3", "--fast"]) == 0
        assert "nodes" in capsys.readouterr().out

    def test_table1a_fast(self, capsys):
        assert main(["table1a", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Table 1a" in out and "wall(model)" in out

    def test_fig2_fast_few_cycles(self, capsys):
        assert main(["fig2", "--fast", "--cycles", "3"]) == 0
        assert "convergence histories" in capsys.readouterr().out

    def test_fig4_fast_few_cycles(self, capsys):
        assert main(["fig4", "--fast", "--cycles", "3"]) == 0
        assert "Mach" in capsys.readouterr().out

    def test_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])


class TestReportTarget:
    def test_report_fast_writes_json_and_markdown(self, tmp_path, capsys):
        assert main(["report", "--fast", "--ranks", "2", "--cycles", "1",
                     "--report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Run report" in out and "Communication matrix" in out
        from repro.observatory import RunReport
        report = RunReport.from_json(tmp_path / "report.json")
        assert report.backend == "sim" and report.n_ranks == 2
        assert report.comm_matrix.nonempty
        assert (tmp_path / "report.md").read_text().startswith("# Run report")

    def test_report_is_default_target(self, capsys):
        assert main(["--fast", "--ranks", "2", "--cycles", "1"]) == 0
        assert "Run report" in capsys.readouterr().out


class TestRecordSaving:
    def test_fig2_save(self, tmp_path, capsys):
        assert main(["fig2", "--fast", "--cycles", "2",
                     "--save", str(tmp_path)]) == 0
        from repro.harness.record import load_record
        data = load_record(tmp_path / "fig2_convergence.npz")
        assert any(k.startswith("history_") for k in data)

    def test_fig4_save(self, tmp_path, capsys):
        assert main(["fig4", "--fast", "--cycles", "2",
                     "--save", str(tmp_path)]) == 0
        from repro.harness.record import load_record
        data = load_record(tmp_path / "fig4_mach.npz")
        assert "mach" in data and "levels" in data


class TestClaims:
    def test_claims_fast(self, capsys):
        assert main(["claims", "--fast", "--cycles", "10"]) == 0
        out = capsys.readouterr().out
        assert "claims hold" in out and "verdict" in out

    def test_check_claims_structure(self):
        from repro.harness.claims import check_claims
        from repro.harness.workloads import FAST_CASE
        checks = check_claims(FAST_CASE, fig2_cycles=5)
        assert len(checks) == 10
        names = {c.name for c in checks}
        assert any("reordering" in n for n in names)
        assert any("parallel fraction" in n for n in names)
