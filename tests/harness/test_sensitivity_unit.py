"""Unit tests for sensitivity reporting (no heavy model runs)."""

from repro.harness.sensitivity import SensitivityResult


class TestSensitivityResult:
    def test_all_hold(self):
        r = SensitivityResult(factors=[1.0])
        r.outcomes[(1.0, 1.0)] = {"a": True, "b": True}
        assert r.all_shapes_hold()
        assert r.fraction_holding() == 1.0

    def test_partial_failure(self):
        r = SensitivityResult(factors=[0.5, 1.0])
        r.outcomes[(0.5, 0.5)] = {"a": True, "b": False}
        r.outcomes[(1.0, 1.0)] = {"a": True, "b": True}
        assert not r.all_shapes_hold()
        assert r.fraction_holding() == 0.75

    def test_report_renders(self):
        r = SensitivityResult(factors=[1.0])
        r.outcomes[(1.0, 2.0)] = {"shape": False}
        text = r.report()
        assert "NO" in text and "1.00" in text

    def test_empty_outcomes(self):
        r = SensitivityResult(factors=[])
        assert r.fraction_holding() == 1.0
        assert r.all_shapes_hold()
