"""Shared fixtures: small meshes, edge structures and solvers.

Session-scoped where construction is deterministic and read-only, so the
several hundred tests stay fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mesh import (box_mesh, bump_channel, build_edge_structure,
                        ellipsoid_shell)
from repro.solver import EulerSolver, SolverConfig
from repro.state import freestream_state


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20260705)


@pytest.fixture(scope="session")
def box():
    return box_mesh(4, 4, 4)


@pytest.fixture(scope="session")
def box_struct(box):
    return build_edge_structure(box)


@pytest.fixture(scope="session")
def bump():
    return bump_channel(12, 2, 4)


@pytest.fixture(scope="session")
def bump_struct(bump):
    return build_edge_structure(bump)


@pytest.fixture(scope="session")
def shell():
    return ellipsoid_shell(3, 3)


@pytest.fixture(scope="session")
def shell_struct(shell):
    return build_edge_structure(shell)


@pytest.fixture(scope="session")
def winf():
    """The paper's flow condition: M = 0.768, alpha = 1.116 deg."""
    return freestream_state(0.768, 1.116)


@pytest.fixture(scope="session")
def bump_solver(bump_struct, winf):
    return EulerSolver(bump_struct, winf, SolverConfig())


@pytest.fixture(scope="session")
def converged_bump(bump_struct, winf):
    """A partially converged transonic bump state (shared by diagnostics).

    300 cycles on the small mesh drops the residual well over an order —
    enough for wall pressure / force / contour tests to see structure.
    """
    solver = EulerSolver(bump_struct, winf, SolverConfig())
    w, history = solver.run(n_cycles=300)
    return solver, w, history
