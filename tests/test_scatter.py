"""Tests for the edge scatter/gather kernels."""

import numpy as np
import pytest

from repro.scatter import (EdgeScatter, gather_edge_difference,
                           scatter_add_edges)


@pytest.fixture(scope="module")
def small_graph():
    edges = np.array([[0, 1], [1, 2], [0, 2], [2, 3]])
    return edges, 4


class TestReferenceScatter:
    def test_signed_accumulation(self, small_graph):
        edges, n = small_graph
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        out = scatter_add_edges(edges, vals, n)
        np.testing.assert_allclose(out, [1 + 3, -1 + 2, -2 - 3 + 4, -4])

    def test_multicomponent(self, small_graph, rng):
        edges, n = small_graph
        vals = rng.standard_normal((4, 5))
        out = scatter_add_edges(edges, vals, n)
        assert out.shape == (n, 5)

    def test_gather_difference(self, small_graph):
        edges, n = small_graph
        v = np.array([10.0, 20.0, 30.0, 40.0])
        np.testing.assert_allclose(gather_edge_difference(edges, v),
                                   [10, 10, 20, 10])


class TestReferenceScatterOutSemantics:
    """scatter_add_edges ACCUMULATES into ``out`` unless zero_out=True."""

    def test_out_accumulates_by_default(self, small_graph):
        edges, n = small_graph
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        fresh = scatter_add_edges(edges, vals, n)
        out = np.full(n, 10.0)
        got = scatter_add_edges(edges, vals, n, out=out)
        assert got is out
        np.testing.assert_allclose(out, fresh + 10.0)

    def test_zero_out_gives_overwrite_semantics(self, small_graph):
        edges, n = small_graph
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        fresh = scatter_add_edges(edges, vals, n)
        out = np.full(n, 10.0)
        scatter_add_edges(edges, vals, n, out=out, zero_out=True)
        np.testing.assert_allclose(out, fresh)

    def test_reused_buffer_without_zero_out_folds_history(self, small_graph):
        # The failure mode the zero_out flag exists to prevent: two calls
        # into the same buffer silently sum both results.
        edges, n = small_graph
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        out = np.zeros(n)
        scatter_add_edges(edges, vals, n, out=out)
        scatter_add_edges(edges, vals, n, out=out)
        np.testing.assert_allclose(out, 2 * scatter_add_edges(edges, vals, n))

    def test_zero_out_ignored_without_out(self, small_graph):
        edges, n = small_graph
        vals = np.ones(4)
        np.testing.assert_allclose(
            scatter_add_edges(edges, vals, n, zero_out=True),
            scatter_add_edges(edges, vals, n))

    def test_multicomponent_out(self, small_graph, rng):
        edges, n = small_graph
        vals = rng.standard_normal((4, 5))
        out = rng.standard_normal((n, 5))
        expect = out + scatter_add_edges(edges, vals, n)
        scatter_add_edges(edges, vals, n, out=out)
        np.testing.assert_allclose(out, expect, atol=1e-14)


class TestEdgeScatterOut:
    """EdgeScatter's out= OVERWRITES (CSR product semantics), every method."""

    @pytest.mark.parametrize("method", ["signed", "unsigned"])
    def test_edge_methods_overwrite(self, bump_struct, rng, method):
        s = EdgeScatter(bump_struct.edges, bump_struct.n_vertices)
        vals = rng.standard_normal((bump_struct.n_edges, 5))
        out = np.full((bump_struct.n_vertices, 5), 99.0)
        got = getattr(s, method)(vals, out=out)
        assert got is out
        np.testing.assert_allclose(out, getattr(s, method)(vals),
                                   atol=1e-12)

    def test_neighbor_sum_overwrites(self, bump_struct, rng):
        s = EdgeScatter(bump_struct.edges, bump_struct.n_vertices)
        v = rng.standard_normal((bump_struct.n_vertices, 5))
        out = np.full((bump_struct.n_vertices, 5), 99.0)
        s.neighbor_sum(v, out=out)
        np.testing.assert_allclose(out, s.neighbor_sum(v), atol=1e-12)

    def test_1d_out(self, small_graph):
        edges, n = small_graph
        s = EdgeScatter(edges, n)
        out = np.full(n, -5.0)
        s.unsigned(np.ones(4), out=out)
        np.testing.assert_allclose(out, s.degree)

    def test_out_shape_validated(self, small_graph):
        edges, n = small_graph
        s = EdgeScatter(edges, n)
        with pytest.raises(ValueError, match="shape"):
            s.signed(np.ones(4), out=np.zeros(n + 1))

    def test_noncontiguous_out_falls_back(self, small_graph):
        # The csr_matvecs fast path needs contiguous arrays; a strided out
        # must still produce correct results through the fallback.
        edges, n = small_graph
        s = EdgeScatter(edges, n)
        vals = np.arange(4.0)
        wide = np.zeros((n, 2))
        s.signed(vals, out=wide[:, 0])
        np.testing.assert_allclose(wide[:, 0], s.signed(vals))


class TestEdgeScatter:
    def test_signed_matches_reference(self, bump_struct, rng):
        s = EdgeScatter(bump_struct.edges, bump_struct.n_vertices)
        vals = rng.standard_normal((bump_struct.n_edges, 5))
        ref = scatter_add_edges(bump_struct.edges, vals,
                                bump_struct.n_vertices)
        np.testing.assert_allclose(s.signed(vals), ref, atol=1e-12)

    def test_unsigned(self, small_graph):
        edges, n = small_graph
        s = EdgeScatter(edges, n)
        out = s.unsigned(np.ones(4))
        np.testing.assert_allclose(out, s.degree)

    def test_degree(self, small_graph):
        edges, n = small_graph
        s = EdgeScatter(edges, n)
        np.testing.assert_allclose(s.degree, [2, 2, 3, 1])

    def test_neighbor_sum(self, small_graph):
        edges, n = small_graph
        s = EdgeScatter(edges, n)
        v = np.array([1.0, 2.0, 3.0, 4.0])
        # neighbours: 0:{1,2} 1:{0,2} 2:{0,1,3} 3:{2}
        np.testing.assert_allclose(s.neighbor_sum(v), [5, 4, 7, 3])

    def test_neighbor_sum_multicomponent(self, small_graph, rng):
        edges, n = small_graph
        s = EdgeScatter(edges, n)
        v = rng.standard_normal((n, 5))
        out = s.neighbor_sum(v)
        ref = np.zeros_like(v)
        for i, j in edges:
            ref[i] += v[j]
            ref[j] += v[i]
        np.testing.assert_allclose(out, ref, atol=1e-14)

    def test_1d_values(self, small_graph):
        edges, n = small_graph
        s = EdgeScatter(edges, n)
        out = s.signed(np.ones(4))
        assert out.shape == (n,)

    def test_rejects_bad_edges_shape(self):
        with pytest.raises(ValueError, match="ne, 2"):
            EdgeScatter(np.zeros((3, 3), dtype=int), 4)

    def test_constant_field_signed_zero_on_closed_sums(self, box_struct):
        # sum over all vertices of signed scatter of anything is zero
        # (every edge contributes +v and -v).
        s = EdgeScatter(box_struct.edges, box_struct.n_vertices)
        out = s.signed(np.ones(box_struct.n_edges))
        assert out.sum() == pytest.approx(0.0, abs=1e-10)
