"""Tests for the split-phase protocol verifier (RA2xx + RA3xx)."""

import subprocess
import sys
import time
from pathlib import Path
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.__main__ import main
from repro.analysis.protocol import (MODEL_MUTATIONS, PROTOCOL_PAIRS,
                                     SEEDED_VIOLATIONS,
                                     ProtocolVerificationError,
                                     build_programs, check_protocol_paths,
                                     check_protocol_source,
                                     cycle_exchange_ops,
                                     expected_exchange_count,
                                     registry_rot_findings, run_selftest,
                                     verify_schedule)
from repro.analysis.protocol.fixtures import CLEAN_IDIOMS, fake_ring_schedule
from repro.mesh.edges import build_edge_structure
from repro.mesh.generators.box import box_mesh
from repro.parti.schedule import build_gather_schedule
from repro.parti.translation import TranslationTable
from repro.partition.coordinate import recursive_coordinate_bisection

FIXTURE = Path(__file__).parent / "fixtures" / "protocol_violations.py"
SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"


def schedule_for(mesh, struct, n_ranks, assignment=None):
    """Inspector idiom: ghost schedule from the owned-edge endpoints."""
    if assignment is None:
        assignment = recursive_coordinate_bisection(mesh.vertices, n_ranks)
    table = TranslationTable(assignment, n_parts=n_ranks)
    edge_owner = table.owner_of(struct.edges[:, 0])
    required = [struct.edges[edge_owner == r].ravel()
                for r in range(n_ranks)]
    return build_gather_schedule(required, table, name=f"test-p{n_ranks}")


@pytest.fixture(scope="module")
def box8():
    mesh = box_mesh(8, 8, 8)
    return mesh, build_edge_structure(mesh)


# ---------------------------------------------------------------------------
# Level 1: the AST checker
# ---------------------------------------------------------------------------

class TestAstChecker:
    def test_parallel_layers_are_clean(self):
        findings = check_protocol_paths(
            [SRC_REPRO / "distsolver", SRC_REPRO / "parti"], check_rot=True)
        assert findings == []

    @pytest.mark.parametrize("name", sorted(SEEDED_VIOLATIONS))
    def test_seeded_violation_caught(self, name):
        code, source = SEEDED_VIOLATIONS[name]
        found = {f.code for f in check_protocol_source(source, name)}
        assert code in found

    @pytest.mark.parametrize("name", sorted(CLEAN_IDIOMS))
    def test_clean_idiom_passes(self, name):
        assert check_protocol_source(CLEAN_IDIOMS[name], name) == []

    def test_fixture_file_findings(self):
        findings = check_protocol_paths([FIXTURE])
        codes = {f.code for f in findings}
        assert {"RA201", "RA202", "RA203", "RA204", "RA205"} <= codes

    def test_noqa_suppresses(self):
        source = (
            "def f(machine, messages):\n"
            "    pending = machine.post(messages, 'x')  # noqa: RA201\n"
            "    return None\n")
        assert check_protocol_source(source) == []

    def test_noqa_other_code_does_not_suppress(self):
        source = (
            "def f(machine, messages):\n"
            "    pending = machine.post(messages, 'x')  # noqa: RA203\n"
            "    return None\n")
        assert {f.code for f in check_protocol_source(source)} == {"RA201"}

    def test_registry_rot_detected(self):
        # An empty scan has seen no call names: every pair is stale.
        findings = registry_rot_findings(set())
        assert findings and all(f.code == "RA206" for f in findings)
        stale = {f.message.split("'")[1] for f in findings}
        assert stale == {p.name for p in PROTOCOL_PAIRS}

    def test_syntax_error_is_ra000(self):
        findings = check_protocol_source("def f(:\n", "broken.py")
        assert [f.code for f in findings] == ["RA000"]

    def test_findings_report_at_begin_line(self):
        _code, source = SEEDED_VIOLATIONS["missing_finish"]
        (finding,) = check_protocol_source(source)
        assert finding.line == 2  # the begin, where the noqa would go

    def test_selftest_is_green(self):
        assert run_selftest() == []


# ---------------------------------------------------------------------------
# Level 2: the schedule model checker
# ---------------------------------------------------------------------------

class TestModelChecker:
    def test_exchange_count_invariants(self):
        assert len(cycle_exchange_ops("overlap")) == 34
        assert len(cycle_exchange_ops("blocking")) == 37
        assert expected_exchange_count("overlap") == 34
        assert expected_exchange_count("blocking") == 37

    def test_real_partition_verifies_clean(self, box8):
        mesh, struct = box8
        for n_ranks in (2, 4, 8):
            result = verify_schedule(schedule_for(mesh, struct, n_ranks))
            assert result.ok, [str(f) for f in result.findings]
            assert result.n_ranks == n_ranks
            assert result.semantics_checked == ("pipe", "shm")

    def test_blocking_mode_verifies_clean(self, box8):
        mesh, struct = box8
        result = verify_schedule(schedule_for(mesh, struct, 4),
                                 mode="blocking")
        assert result.ok, [str(f) for f in result.findings]
        assert result.n_ops == 37

    @pytest.mark.parametrize("name", sorted(MODEL_MUTATIONS))
    def test_model_mutation_caught(self, name, box8):
        mesh, struct = box8
        schedule = schedule_for(mesh, struct, 4)
        code, mutator = MODEL_MUTATIONS[name]
        ops = cycle_exchange_ops("overlap")
        result = verify_schedule(schedule, **mutator(schedule, ops))
        assert code in {f.code for f in result.findings}, \
            [str(f) for f in result.findings]

    def test_raise_if_failed(self):
        schedule = fake_ring_schedule()
        ops = cycle_exchange_ops("overlap")
        _code, mutator = MODEL_MUTATIONS["swap_op_order"]
        result = verify_schedule(schedule, **mutator(schedule, ops))
        with pytest.raises(ProtocolVerificationError):
            result.raise_if_failed()
        clean = verify_schedule(schedule)
        clean.raise_if_failed()  # no-op when ok

    def test_single_rank_schedule(self):
        schedule = SimpleNamespace(send_indices={})
        result = verify_schedule(schedule)
        assert result.ok and result.n_ranks == 1

    def test_programs_balance(self, box8):
        mesh, struct = box8
        schedule = schedule_for(mesh, struct, 4)
        ops = cycle_exchange_ops("overlap")
        programs = build_programs(schedule, ops)
        sends = sum(1 for p in programs for i in p if i[0] == "send")
        recvs = sum(1 for p in programs for i in p if i[0] == "recv")
        assert sends == recvs
        n_pairs = len(schedule.send_indices)
        assert sends == n_pairs * len(ops)

    def test_box27_sweep_under_budget(self):
        # Acceptance criterion: box27 certified deadlock-free at 2-16
        # ranks under both capacity semantics in < 5 s (verification
        # time; the mesh/inspector build is shared and excluded).
        mesh = box_mesh(27, 27, 27)
        struct = build_edge_structure(mesh)
        schedules = [schedule_for(mesh, struct, n) for n in (2, 4, 8, 16)]
        t0 = time.perf_counter()
        for schedule in schedules:
            result = verify_schedule(
                schedule, expected_ops=expected_exchange_count("overlap"))
            assert result.ok, [str(f) for f in result.findings]
        assert time.perf_counter() - t0 < 5.0


@st.composite
def partitions(draw):
    """(n_ranks, assignment) with every rank owning >= 1 vertex."""
    n_vertices = 5 ** 3  # box4 vertex count
    n_ranks = draw(st.integers(2, 5))
    assignment = draw(st.lists(st.integers(0, n_ranks - 1),
                               min_size=n_vertices, max_size=n_vertices))
    # Guarantee every rank appears (empty ranks are legal but trivial).
    assignment[:n_ranks] = range(n_ranks)
    return n_ranks, np.array(assignment)


class TestRandomPartitions:
    @pytest.fixture(scope="class")
    def box4(self):
        mesh = box_mesh(4, 4, 4)
        return mesh, build_edge_structure(mesh)

    @given(part=partitions())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_random_partition_schedules_verify_clean(self, part, box4):
        mesh, struct = box4
        n_ranks, assignment = part
        schedule = schedule_for(mesh, struct, n_ranks,
                                assignment=assignment)
        result = verify_schedule(schedule)
        assert result.ok, [str(f) for f in result.findings]


# ---------------------------------------------------------------------------
# CLI: exit codes and modes
# ---------------------------------------------------------------------------

class TestCli:
    def test_protocol_strict_clean_repo(self, capsys):
        assert main(["--protocol", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out

    def test_protocol_fixture_fails(self, capsys):
        assert main(["--protocol", str(FIXTURE)]) == 1
        out = capsys.readouterr().out
        assert "per-rule:" in out and "RA201" in out

    def test_syntax_error_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        assert main(["--protocol", str(bad)]) == 2
        assert main([str(bad)]) == 2  # lint mode agrees

    def test_selftest_mode(self, capsys):
        assert main(["--protocol", "--selftest"]) == 0
        assert "protocol selftest: ok" in capsys.readouterr().out

    def test_mutate_mode(self, capsys):
        assert main(["--protocol", "--mutate"]) == 0
        out = capsys.readouterr().out
        assert out.count("(caught)") == len(MODEL_MUTATIONS)

    def test_sweep_mode(self, capsys):
        assert main(["--protocol", "--sweep", "box8",
                     "--ranks", "2", "3"]) == 0
        out = capsys.readouterr().out
        assert "sweep box8 @ 2 ranks" in out
        assert "34 exchanges/cycle, ok" in out

    def test_sweep_unknown_mesh_exits_2(self, capsys):
        assert main(["--protocol", "--sweep", "nosuch"]) == 2

    def test_sweep_requires_protocol(self):
        with pytest.raises(SystemExit):
            main(["--selftest"])

    def test_lint_per_rule_summary(self, capsys):
        lint_fixture = FIXTURE.parent / "lint_violations.py"
        code = main([str(lint_fixture)])
        assert code == 1
        assert "per-rule:" in capsys.readouterr().out

    def test_module_invocation(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--protocol",
             "--strict"],
            capture_output=True, text=True,
            cwd=Path(__file__).resolve().parents[2])
        assert proc.returncode == 0, proc.stdout + proc.stderr
