"""Deliberate split-phase protocol violations — checker test fixture.

Never imported; scanned by ``tests/analysis/test_protocol.py`` and by
the CLI exit-code tests.  Expected findings:

* ``leak_pending``      -> RA201 (begin never finished on the return path)
* ``double_begin``      -> RA202 (begin overwrites a pending begin)
* ``phantom_finish``    -> RA203 (finish of a definitely-empty token)
* ``writer``/``reader`` -> RA204 (opposite lock acquisition orders)
* ``LeakyInlet``        -> RA205 (lease opened, never released)
"""

import numpy as np


def leak_pending(machine, messages, flag):
    pending = machine.post(messages, "w-gather")
    if flag:
        return machine.complete(pending)
    return None


def double_begin(schedule, machine, w, ghosts):
    pending = schedule.gather_begin(machine, w)
    pending = schedule.gather_begin(machine, w)
    schedule.gather_finish(machine, pending, ghosts)


def phantom_finish(machine):
    pending = None
    return machine.complete(pending)


def writer(outbox_lock, stats_lock, payload):
    with outbox_lock:
        with stats_lock:
            payload.flush()


def reader(outbox_lock, stats_lock, payload):
    with stats_lock:
        with outbox_lock:
            payload.drain()


class LeakyInlet:
    def pull(self, src, ctrl):
        view = self.inlet.open(src, ctrl)
        return np.array(view)
