"""Seeded lint violations — the fixture ``python -m repro.analysis`` must flag.

This file is *never imported by the solver*; it exists so the lint tests
can assert each rule fires (and that the sanctioned idioms do not).  The
file sits outside any ``repro`` package root, so the registry whitelists
never apply and hot paths are marked with the :func:`hot_kernel`
decorator, exactly as out-of-tree code would.

Expected findings (see tests/analysis/test_lint.py):

* RA001 x1  (``hot_alloc``; the guarded and noqa'd variants are clean)
* RA002 x1  (``scalar_scatter``)
* RA101 x1  (``mutable_default``)
* RA102 x1  (``swallow``)
* RA103 x1  (``shadow``)
* RA104 x1  (``double``)
"""

import numpy as np

from repro.analysis import hot_kernel


@hot_kernel
def hot_alloc(values):
    """RA001: unconditional allocation inside a hot function."""
    tmp = np.zeros(values.shape)
    tmp += values
    return tmp


@hot_kernel
def hot_alloc_guarded(values, out=None):
    """Clean: allocation under the sanctioned ``is None`` fallback."""
    if out is None:
        out = np.zeros(values.shape)
    out[...] = values
    return out


@hot_kernel
def hot_alloc_ifexp(values, buf=None):
    """Clean: the conditional-expression form of the fallback idiom."""
    buf = buf if buf is not None else np.empty(values.shape)
    buf[...] = values
    return buf


@hot_kernel
def hot_alloc_suppressed(values):
    """Clean: explicitly waived with a per-line pragma."""
    tmp = np.empty(values.shape)  # noqa: RA001
    tmp[...] = values
    return tmp


def scalar_scatter(out, idx, vals):
    """RA002: np.add.at outside the whitelisted setup modules."""
    np.add.at(out, idx, vals)
    return out


def mutable_default(x, acc=[]):
    """RA101: mutable default argument."""
    acc.append(x)
    return acc


def swallow(fn):
    """RA102: bare except."""
    try:
        return fn()
    except:
        return None


def shadow(list):
    """RA103: argument shadows a builtin."""
    return list


double = lambda x: 2 * x
"""RA104: lambda bound to a name."""
