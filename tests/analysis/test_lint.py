"""Tests for the repo-specific AST lint pass (``python -m repro.analysis``)."""

import subprocess
import sys
import textwrap
from collections import Counter
from pathlib import Path

import pytest

from repro.analysis import lint_file, lint_paths
from repro.analysis.__main__ import main
from repro.analysis.lint import (ADD_AT_ALLOWED, HOT_FUNCTIONS, OUT_REQUIRED,
                                 module_key_for)

FIXTURE = Path(__file__).parent / "fixtures" / "lint_violations.py"
SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"


def write_module(tmp_path: Path, relpath: str, source: str) -> Path:
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


class TestModuleKey:
    def test_repro_relative(self):
        assert module_key_for("src/repro/scatter.py") == "repro/scatter.py"
        assert (module_key_for("/a/b/src/repro/kernels/fused.py")
                == "repro/kernels/fused.py")

    def test_innermost_repro_wins(self):
        assert (module_key_for("/repro/old/repro/mesh/edges.py")
                == "repro/mesh/edges.py")

    def test_out_of_tree_is_bare_filename(self):
        # Whitelists key on "repro/..." paths, so out-of-tree files can
        # never accidentally match them.
        key = module_key_for(FIXTURE)
        assert key == "lint_violations.py"
        assert not any(key.startswith(p) for p in ADD_AT_ALLOWED)


class TestFixtureFindings:
    """The seeded-violation fixture produces exactly the documented set."""

    @pytest.fixture(scope="class")
    def findings(self):
        return lint_file(FIXTURE)

    def test_expected_codes(self, findings):
        counts = Counter(f.code for f in findings)
        assert counts == {"RA001": 1, "RA002": 1, "RA101": 1,
                          "RA102": 1, "RA103": 1, "RA104": 1}

    def test_severities(self, findings):
        by_code = {f.code: f.severity for f in findings}
        assert by_code["RA001"] == "error"
        assert by_code["RA002"] == "error"
        assert all(by_code[c] == "warning"
                   for c in ("RA101", "RA102", "RA103", "RA104"))

    def test_flagged_locations(self, findings):
        src_lines = FIXTURE.read_text().splitlines()
        ra001 = next(f for f in findings if f.code == "RA001")
        assert "np.zeros" in src_lines[ra001.line - 1]
        ra002 = next(f for f in findings if f.code == "RA002")
        assert "np.add.at" in src_lines[ra002.line - 1]

    def test_none_guard_and_noqa_not_flagged(self, findings):
        # Only hot_alloc trips RA001 — the guarded, conditional-expression
        # and noqa'd variants are all sanctioned.
        src_lines = FIXTURE.read_text().splitlines()
        flagged = {src_lines[f.line - 1] for f in findings
                   if f.code == "RA001"}
        assert all("hot_alloc_guarded" not in line
                   and "is not None" not in line
                   and "noqa" not in line for line in flagged)


class TestRules:
    def test_hot_registry_applies_inside_repro_tree(self, tmp_path):
        path = write_module(tmp_path, "repro/scatter.py", """\
            import numpy as np

            def scatter_add_edges(edges, vals, n, out=None, zero_out=False):
                buf = np.empty(vals.shape)
                return buf

            def scatter_add_unsigned(edges, vals, n, out=None):
                return out

            def scatter_neighbor_sum(edges, vals, n, out=None):
                return out

            class EdgeScatter:
                def signed(self, v, out=None):
                    return out
                def unsigned(self, v, out=None):
                    return out
                def neighbor_sum(self, v, out=None):
                    return out
                def _apply(self, v, out):
                    return out
            """)
        codes = [f.code for f in lint_file(path)]
        # scatter_add_edges is registered hot for this module key, so the
        # undecorated np.empty is still flagged.
        assert codes == ["RA001"]

    def test_add_at_allowed_in_mesh_modules(self, tmp_path):
        path = write_module(tmp_path, "repro/mesh/edges.py", """\
            import numpy as np

            def accumulate(out, idx, vals):
                np.add.at(out, idx, vals)
            """)
        assert lint_file(path) == []

    def test_other_ufunc_at_forms_flagged(self, tmp_path):
        path = write_module(tmp_path, "repro/solver/foo.py", """\
            import numpy as np

            def f(out, idx, vals):
                np.subtract.at(out, idx, vals)
                np.maximum.at(out, idx, vals)
            """)
        assert [f.code for f in lint_file(path)] == ["RA002", "RA002"]

    def test_out_required_rule(self, tmp_path):
        path = write_module(tmp_path, "repro/solver/timestep.py", """\
            def local_timestep(mesh, state, cfl):
                return state
            """)
        findings = lint_file(path)
        assert [f.code for f in findings] == ["RA003"]
        assert "out=" in findings[0].message

    def test_out_required_satisfied_by_zero_out(self, tmp_path):
        path = write_module(tmp_path, "repro/solver/timestep.py", """\
            def local_timestep(mesh, state, cfl, out=None, zero_out=False):
                return out
            """)
        assert lint_file(path) == []

    def test_stale_registry_entry_is_flagged(self, tmp_path):
        # A module that lost its registered kernels is registry rot: the
        # contract silently stopped being checked.
        path = write_module(tmp_path, "repro/solver/smoothing.py", """\
            def something_else():
                return 1
            """)
        findings = lint_file(path)
        assert [f.code for f in findings] == ["RA003"]
        assert "stale registry entry" in findings[0].message

    def test_bare_noqa_suppresses_everything(self, tmp_path):
        path = write_module(tmp_path, "repro/solver/foo.py", """\
            import numpy as np

            def f(out, idx, vals):
                np.add.at(out, idx, vals)  # noqa
            """)
        assert lint_file(path) == []

    def test_noqa_other_code_does_not_suppress(self, tmp_path):
        path = write_module(tmp_path, "repro/solver/foo.py", """\
            import numpy as np

            def f(out, idx, vals):
                np.add.at(out, idx, vals)  # noqa: RA001
            """)
        assert [f.code for f in lint_file(path)] == ["RA002"]

    def test_syntax_error_reported_not_raised(self, tmp_path):
        path = write_module(tmp_path, "broken.py", "def f(:\n")
        findings = lint_file(path)
        assert [f.code for f in findings] == ["RA000"]
        assert findings[0].severity == "error"

    def test_registries_reference_real_functions(self):
        # The inverse of the stale-entry rule, asserted directly against
        # the live tree: every registered qualname exists today.
        stale = [f for f in lint_paths([SRC_REPRO])
                 if "stale registry entry" in f.message]
        assert stale == []
        keys = set(HOT_FUNCTIONS) | set(OUT_REQUIRED)
        files = {module_key_for(p) for p in SRC_REPRO.rglob("*.py")}
        assert keys <= files


class TestCli:
    def test_repo_is_clean_under_strict(self, capsys):
        assert main(["--strict", str(SRC_REPRO)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out

    def test_fixture_fails(self, capsys):
        assert main([str(FIXTURE)]) == 1
        out = capsys.readouterr().out
        assert "2 error(s), 4 warning(s)" in out

    def test_warnings_only_fail_under_strict(self, tmp_path, capsys):
        path = write_module(tmp_path, "warn_only.py", """\
            def f(x, acc=[]):
                return acc
            """)
        assert main([str(path)]) == 0
        assert main(["--strict", str(path)]) == 1
        capsys.readouterr()

    def test_module_entry_point(self):
        # The documented CI invocation: python -m repro.analysis --strict.
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--strict",
             str(SRC_REPRO)],
            capture_output=True, text=True)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(FIXTURE)],
            capture_output=True, text=True)
        assert proc.returncode == 1
        assert "RA001" in proc.stdout
