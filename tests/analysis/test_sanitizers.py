"""Tests for the runtime invariant sanitizers (colorings, schedules, buffers)."""

import tracemalloc
from types import SimpleNamespace

import numpy as np
import pytest

from repro.analysis import (NULL_SANITIZER, BufferSanitizer,
                            ColorRaceSanitizer, NullSanitizer, SanitizerError,
                            ScheduleSanitizer, build_sanitizers)
from repro.coloring import EdgeColoring, color_edges
from repro.kernels import ColoredExecutor
from repro.parti import (IncrementalScheduleBuilder, SimMachine,
                         TranslationTable, build_gather_schedule)
from repro.resilience import FaultInjector, FaultSpec
from repro.solver.config import SolverConfig

# A 4-path plus a chord: vertex 1 appears in three edges, so merging all
# edges into one colour is guaranteed to conflict.
EDGES = np.array([[0, 1], [1, 2], [2, 3], [1, 3]], dtype=np.int64)
NV = 4


def corrupted_coloring() -> EdgeColoring:
    """Every edge in one group — vertices 1, 2, 3 each touched twice+."""
    return EdgeColoring(colors=np.zeros(len(EDGES), dtype=np.int64),
                        groups=[np.arange(len(EDGES))])


class TestNullSanitizer:
    def test_disabled_and_inert(self):
        assert NullSanitizer.enabled is False
        assert NULL_SANITIZER.enabled is False
        assert NULL_SANITIZER.findings == ()
        # Every hook swallows anything — the hot-path contract.
        NULL_SANITIZER.check_coloring(EDGES, [np.arange(4)], NV)
        NULL_SANITIZER.check_schedule(None)
        NULL_SANITIZER.on_post("p", {}, 3)
        NULL_SANITIZER.assert_drained("anywhere")
        NULL_SANITIZER.check_out(np.zeros(3), {})
        NULL_SANITIZER.stage_begin()
        NULL_SANITIZER.stage_end(0)
        NULL_SANITIZER.step_end(None)
        NULL_SANITIZER.close()

    def test_build_sanitizers(self):
        off = build_sanitizers(frozenset())
        assert all(s is NULL_SANITIZER for s in off.values())
        on = build_sanitizers({"color"})
        assert isinstance(on["color"], ColorRaceSanitizer)
        assert on["schedule"] is NULL_SANITIZER
        assert on["buffer"] is NULL_SANITIZER
        every = build_sanitizers({"color", "schedule", "buffer"})
        assert isinstance(every["schedule"], ScheduleSanitizer)
        assert isinstance(every["buffer"], BufferSanitizer)

    def test_build_sanitizers_rejects_unknown(self):
        with pytest.raises(ValueError, match="tsan"):
            build_sanitizers({"color", "tsan"})


class TestConfigKnob:
    def test_default_off(self):
        assert SolverConfig().sanitize_set == frozenset()
        assert SolverConfig(sanitize="none").sanitize_set == frozenset()

    def test_all_and_subsets(self):
        assert SolverConfig(sanitize="all").sanitize_set == frozenset(
            {"color", "schedule", "buffer"})
        assert SolverConfig(sanitize="color, schedule").sanitize_set \
            == frozenset({"color", "schedule"})

    def test_unknown_name_rejected_at_construction(self):
        with pytest.raises(ValueError, match="sanitize"):
            SolverConfig(sanitize="colour")


class TestColorRaceSanitizer:
    def test_valid_coloring_passes(self):
        coloring = color_edges(EDGES, NV)
        san = ColorRaceSanitizer()
        san.check_coloring(EDGES, coloring.groups, NV)
        assert san.findings == []

    def test_corrupted_coloring_caught(self):
        san = ColorRaceSanitizer()
        with pytest.raises(SanitizerError, match="color.race"):
            san.check_coloring(EDGES, corrupted_coloring().groups, NV)

    def test_non_strict_records_instead_of_raising(self):
        san = ColorRaceSanitizer(strict=False)
        san.check_coloring(EDGES, corrupted_coloring().groups, NV)
        assert len(san.findings) == 1
        assert san.findings[0].code == "color.race"
        assert "colour 0" in san.findings[0].message

    def test_executor_verifies_at_construction(self):
        # A good coloring constructs fine under the sanitizer...
        ex = ColoredExecutor(EDGES, NV, sanitizer=ColorRaceSanitizer())
        ex.close()
        # ...a corrupted one is rejected before any store can race.
        with pytest.raises(SanitizerError, match="ColoredExecutor"):
            ColoredExecutor(EDGES, NV, coloring=corrupted_coloring(),
                            sanitizer=ColorRaceSanitizer())


@pytest.fixture
def table():
    # 6 globals over 3 ranks: rank r owns {2r, 2r+1}.
    return TranslationTable(np.array([0, 0, 1, 1, 2, 2]), 3)


@pytest.fixture
def schedule(table):
    # Each rank needs both globals of the next rank (wrap-around), so
    # every rank has two ghosts from a single owner.
    req = [np.array([2, 3]), np.array([4, 5]), np.array([0, 1])]
    return build_gather_schedule(req, table)


class TestScheduleStaticChecks:
    def test_valid_schedule_passes(self, schedule):
        san = ScheduleSanitizer()
        san.check_schedule(schedule)
        assert san.findings == []

    def test_duplicate_ghost(self, schedule):
        g = schedule.ghost_globals[0]
        schedule.ghost_globals[0] = np.concatenate([g, g[:1]])
        with pytest.raises(SanitizerError, match="duplicate-ghost"):
            ScheduleSanitizer().check_schedule(schedule)

    def test_owned_ghost(self, schedule):
        # Rank 0 owns global 0; listing it as a ghost is nonsense.
        schedule.ghost_globals[0] = np.array([0, 3])
        with pytest.raises(SanitizerError, match="owned-ghost"):
            ScheduleSanitizer().check_schedule(schedule)

    def test_slice_gap_and_overlap(self, schedule):
        key = (1, 0)                       # rank 1 sends to rank 0
        start, stop = schedule.recv_slices[key]
        schedule.recv_slices[key] = (start + 1, stop)
        san = ScheduleSanitizer(strict=False)
        san.check_schedule(schedule)
        assert any(f.code == "schedule.slice-coverage" for f in san.findings)

    def test_length_mismatch(self, schedule):
        key = (1, 0)
        schedule.send_indices[key] = schedule.send_indices[key][:-1]
        with pytest.raises(SanitizerError, match="length-mismatch"):
            ScheduleSanitizer().check_schedule(schedule)

    def test_translation_mismatch(self, schedule):
        # Same length, wrong order: the owner packs values that land in
        # the wrong ghost slots.
        key = (1, 0)
        schedule.send_indices[key] = schedule.send_indices[key][::-1]
        with pytest.raises(SanitizerError, match="translation"):
            ScheduleSanitizer().check_schedule(schedule)

    def test_pair_mismatch(self, schedule):
        del schedule.send_indices[(1, 0)]
        san = ScheduleSanitizer(strict=False)
        san.check_schedule(schedule)
        assert any(f.code == "schedule.pair-mismatch" for f in san.findings)


class TestScheduleRuntimeChecks:
    def _machine(self, injector=None):
        m = SimMachine(2, injector=injector)
        san = ScheduleSanitizer()
        m.sanitizer = san
        return m, san

    def test_matched_post_complete_is_clean(self):
        m, san = self._machine()
        pending = m.post({(0, 1): np.arange(4.0)}, "ghost")
        m.complete(pending)
        san.assert_drained("cycle")
        assert san.findings == []

    def test_unmatched_post_flagged_at_drain(self):
        m, san = self._machine()
        m.post({(0, 1): np.arange(4.0)}, "ghost")
        with pytest.raises(SanitizerError, match="unmatched-post"):
            san.assert_drained("cycle")
        # The drain clears state: the next step starts clean.
        san.assert_drained("cycle")

    def test_unmatched_complete_flagged(self):
        m, san = self._machine()
        with pytest.raises(SanitizerError, match="unmatched-complete"):
            m.complete({(0, 1): np.arange(4.0)})

    def test_op_pairing(self):
        san = ScheduleSanitizer()
        san.on_post_op(rank=1, op=7)
        san.on_complete_op(rank=1, op=7)
        san.assert_drained()
        with pytest.raises(SanitizerError, match="unmatched-complete"):
            san.on_complete_op(rank=1, op=7)

    def test_dropped_message_on_exchange(self):
        injector = FaultInjector([FaultSpec(kind="drop", phase="ghost")])
        m, san = self._machine(injector)
        with pytest.raises(SanitizerError, match="dropped-message"):
            m.exchange({(0, 1): np.arange(4.0)}, "ghost")

    def test_dropped_message_on_post(self):
        injector = FaultInjector([FaultSpec(kind="drop", phase="ghost")])
        m, san = self._machine(injector)
        with pytest.raises(SanitizerError, match="dropped-message"):
            m.post({(0, 1): np.arange(4.0)}, "ghost")

    def test_clean_fabric_raises_nothing(self):
        m, san = self._machine()
        out = m.exchange({(0, 1): np.arange(4.0)}, "ghost")
        assert (0, 1) in out
        assert san.findings == []


class TestIncrementalChecks:
    def test_valid_chain_passes(self, table):
        builder = IncrementalScheduleBuilder(table)
        builder.add([np.array([2, 3]), np.array([4]), np.array([0])])
        # Second loop re-requests some ids (dedup) plus new ones.
        builder.add([np.array([2, 4]), np.array([4, 5]), np.array([0, 1])])
        san = ScheduleSanitizer()
        san.check_incremental(builder)
        assert san.findings == []

    def test_corrupted_slot_map(self, table):
        builder = IncrementalScheduleBuilder(table)
        builder.add([np.array([2, 3]), np.array([4]), np.array([0])])
        slots = builder._slot_of[0]
        first = next(iter(slots))
        slots[first] = slots[first] + 5    # slot map no longer dense
        with pytest.raises(SanitizerError, match="incr-slots"):
            ScheduleSanitizer().check_incremental(builder)

    def test_refetch_detected(self, table):
        builder = IncrementalScheduleBuilder(table)
        builder.add([np.array([2, 3]), np.array([4]), np.array([0])])
        builder.add([np.array([4]), np.array([5]), np.array([1])])
        # Force increment 1 to "re-fetch" a global that increment 0
        # already resident-ised for rank 0 — the hash-table dedup's job.
        sched = builder.increments[1].schedule
        sched.ghost_globals[0] = np.append(sched.ghost_globals[0], 2)
        with pytest.raises(SanitizerError, match="incr-refetch"):
            ScheduleSanitizer().check_incremental(builder)


class TestBufferSanitizer:
    def test_distinct_ok_and_alias_caught(self):
        a = np.zeros(8)
        b = np.zeros(8)
        san = BufferSanitizer()
        san.check_distinct({"a": a, "b": b})
        assert san.findings == []
        with pytest.raises(SanitizerError, match="buffer.alias"):
            san.check_distinct({"a": a, "view": a[2:]})

    def test_out_alias_caught(self):
        x = np.zeros((4, 5))
        san = BufferSanitizer()
        san.check_out(np.zeros((4, 5)), {"x": x})
        san.check_out(None, {"x": x})
        assert san.findings == []
        with pytest.raises(SanitizerError, match="out-alias"):
            san.check_out(x[:, :2], {"x": x})

    def test_arena_freeze(self):
        san = BufferSanitizer()
        san.step_end(SimpleNamespace(n_arena_allocs=12))   # warmup: freeze
        san.step_end(SimpleNamespace(n_arena_allocs=12))   # steady: fine
        with pytest.raises(SanitizerError, match="arena-grew"):
            san.step_end(SimpleNamespace(n_arena_allocs=13))

    def test_stage_window_skipped_during_warmup(self):
        san = BufferSanitizer()
        san.stage_begin()
        assert san._snap is None           # warmup: no window opened
        san.stage_end(0)                   # and closing it is a no-op
        assert san.findings == []
        san.close()

    def test_stage_alloc_detected_and_clean_stage_passes(self):
        # Watch this test file so the retained allocation below is
        # attributed to a "hot" file; threshold low enough that one
        # megabyte-sized array trips it.
        san = BufferSanitizer(watch_files=("*test_sanitizers.py",),
                              stage_alloc_threshold=1 << 16)
        try:
            san.step_end(SimpleNamespace(n_arena_allocs=0))  # end warmup
            san.stage_begin()
            san.stage_end(0)               # nothing allocated: clean
            assert san.findings == []
            san.stage_begin()
            retained = [np.zeros(1 << 18) for _ in range(4)]
            with pytest.raises(SanitizerError, match="stage-alloc"):
                san.stage_end(1)
            assert retained                # keep the allocation live
        finally:
            san.close()
        assert not tracemalloc.is_tracing() or not san._started_tracing

    def test_close_stops_tracing_it_started(self):
        was_tracing = tracemalloc.is_tracing()
        san = BufferSanitizer()
        san.step_end(SimpleNamespace(n_arena_allocs=0))
        san.stage_begin()
        san.stage_end(0)
        san.close()
        assert tracemalloc.is_tracing() == was_tracing
