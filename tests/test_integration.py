"""Cross-module integration tests: whole pipelines end to end."""

import numpy as np
import pytest

from repro.mesh import (build_edge_structure, bump_channel, ellipsoid_shell,
                        load_mesh, refine_mesh, save_mesh)
from repro.solver import EulerSolver, SolverConfig
from repro.state import freestream_state, is_physical


class TestSaveLoadSolvePipeline:
    def test_roundtripped_mesh_solves_identically(self, tmp_path, winf):
        mesh = bump_channel(8, 2, 4)
        save_mesh(tmp_path / "m.npz", mesh)
        loaded, _ = load_mesh(tmp_path / "m.npz")
        s1 = EulerSolver(mesh, winf)
        s2 = EulerSolver(loaded, winf)
        w1 = s1.step(s1.freestream_solution())
        w2 = s2.step(s2.freestream_solution())
        np.testing.assert_allclose(w1, w2, atol=1e-14)

    def test_partitioned_save_load_distributed(self, tmp_path, winf):
        from repro.distsolver import DistributedEulerSolver
        from repro.partition import recursive_spectral_bisection
        mesh = bump_channel(8, 2, 4)
        struct = build_edge_structure(mesh)
        asg = recursive_spectral_bisection(struct.edges, mesh.n_vertices, 4)
        save_mesh(tmp_path / "m.npz", mesh, partition=asg)
        loaded, loaded_asg = load_mesh(tmp_path / "m.npz")
        struct2 = build_edge_structure(loaded)
        dist = DistributedEulerSolver(struct2, winf, loaded_asg)
        seq = EulerSolver(struct, winf)
        w_d = dist.step(dist.freestream_solution())
        w_s = seq.step(seq.freestream_solution())
        np.testing.assert_allclose(dist.collect(w_d), w_s,
                                   rtol=1e-12, atol=1e-13)


class TestRefineSolvePipeline:
    def test_refined_solution_consistent_with_coarse(self, winf):
        # Both meshes converge toward the same physical flow: compare the
        # maximum Mach number after matched convergence effort.
        from repro.solver import mach_field
        coarse = bump_channel(12, 2, 4)
        fine = refine_mesh(coarse)
        sc = EulerSolver(coarse, winf)
        sf = EulerSolver(fine, winf)
        wc, _ = sc.run(n_cycles=250)
        wf, _ = sf.run(n_cycles=250)
        assert abs(mach_field(wc).max() - mach_field(wf).max()) < 0.12


class TestShellSolvePipeline:
    def test_shell_flow_physical(self):
        # The aircraft-analog mesh with its low-quality corner tets: the
        # conservative configuration must run stably.
        mesh = ellipsoid_shell(5, 5)
        w_inf = freestream_state(0.4, 0.0)
        solver = EulerSolver(mesh, w_inf,
                             SolverConfig(cfl=1.5, residual_smoothing=False))
        w, hist = solver.run(n_cycles=60)
        assert is_physical(w)
        assert hist[-1] < hist[0]

    def test_shell_stagnation_structure(self):
        from repro.solver import mach_field
        mesh = ellipsoid_shell(5, 5)
        w_inf = freestream_state(0.4, 0.0)
        solver = EulerSolver(mesh, w_inf,
                             SolverConfig(cfl=1.5, residual_smoothing=False))
        w, _ = solver.run(n_cycles=120)
        mach = mach_field(w)
        # Stagnation slowdown near the nose; acceleration over the body
        # past the freestream value (measured 0.025 .. 0.419 at this
        # resolution — the coarse faceted body caps the overspeed).
        assert mach.min() < 0.15
        assert mach.max() > 0.405


class TestPipelineToDistributedMultigrid:
    def test_preprocessed_assignments_drive_dmg(self, winf):
        from repro.distsolver import DistributedMultigrid
        from repro.multigrid import mg_cycle
        from repro.pipeline import preprocess
        meshes = [bump_channel(12, 2, 4), bump_channel(6, 2, 2)]
        case = preprocess(meshes, winf, n_ranks=4)
        dmg = DistributedMultigrid(case.hierarchy, case.assignments, winf)
        w_d = dmg.mg_cycle(dmg.freestream_solution(), gamma=2)
        w_s = mg_cycle(case.hierarchy,
                       case.hierarchy.freestream_solution(), gamma=2)
        np.testing.assert_allclose(dmg.solvers[0].collect(w_d), w_s,
                                   rtol=1e-11, atol=1e-12)
