"""Unit tests for the observatory's derived-metric computations."""

import numpy as np
import pytest

from repro.observatory import (CommMatrix, LoadBalance, OverlapStats,
                               achieved_rates, comm_matrix_from_payloads,
                               load_balance_from_payloads,
                               load_balance_from_rank_flops,
                               overlap_from_spans)
from repro.telemetry import TracePayload, Tracer
from repro.telemetry.tracer import SPAN_DTYPE


class TestCommMatrix:
    def test_roundtrip_and_derived(self):
        msgs = np.array([[0, 3], [2, 0]], dtype=np.int64)
        byts = np.array([[0, 300], [200, 0]], dtype=np.int64)
        cm = CommMatrix(n_ranks=2, n_cycles=3, msgs=msgs, bytes=byts)
        assert cm.nonempty
        assert cm.total_msgs == 5 and cm.total_bytes == 500
        assert cm.n_neighbor_pairs == 2
        np.testing.assert_allclose(cm.msgs_per_cycle, msgs / 3)
        back = CommMatrix.from_dict(cm.to_dict())
        np.testing.assert_array_equal(back.msgs, msgs)
        np.testing.assert_array_equal(back.bytes, byts)
        assert back.n_cycles == 3

    def test_empty_is_not_nonempty(self):
        cm = CommMatrix(n_ranks=3, n_cycles=1)
        assert not cm.nonempty
        assert cm.n_neighbor_pairs == 0

    def test_from_payload_sent_counters(self):
        # pid = rank + 1; rank 0 sends to 1, rank 1 sends to 0.
        p0 = TracePayload(pid=1, counters={"observatory.sent.1.msgs": 4,
                                           "observatory.sent.1.bytes": 640,
                                           "unrelated.counter": 9})
        p1 = TracePayload(pid=2, counters={"observatory.sent.0.msgs": 4,
                                           "observatory.sent.0.bytes": 640})
        cm = comm_matrix_from_payloads([p0, p1], n_ranks=2, n_cycles=2)
        np.testing.assert_array_equal(cm.msgs, [[0, 4], [4, 0]])
        np.testing.assert_array_equal(cm.bytes, [[0, 640], [640, 0]])
        np.testing.assert_allclose(cm.msgs_per_cycle, [[0, 2], [2, 0]])

    def test_from_payload_ignores_foreign_pids(self):
        driver = TracePayload(pid=0, counters={"observatory.sent.1.msgs": 9})
        cm = comm_matrix_from_payloads([driver], n_ranks=2, n_cycles=1)
        assert not cm.nonempty


class TestLoadBalance:
    def test_imbalance_is_max_over_mean(self):
        lb = LoadBalance(basis="flops", per_rank=[1.0, 1.0, 2.0])
        assert lb.imbalance == pytest.approx(1.5)

    def test_empty_or_zero_is_balanced(self):
        assert LoadBalance(basis="flops", per_rank=[]).imbalance == 1.0
        assert LoadBalance(basis="flops",
                           per_rank=[0.0, 0.0]).imbalance == 1.0

    def test_from_rank_flops_sums_phases(self):
        rank_flops = {"phase_a": np.array([10.0, 20.0]),
                      "phase_b": np.array([5.0, 5.0])}
        lb = load_balance_from_rank_flops(rank_flops)
        assert lb.basis == "flops"
        assert lb.per_rank == [15.0, 25.0]
        assert lb.imbalance == pytest.approx(1.25)

    def test_from_payload_cycle_spans(self):
        def payload(rank, durations):
            records = np.array(
                [(0, 0, 0, float(i), float(i) + d)
                 for i, d in enumerate(durations)], dtype=SPAN_DTYPE)
            return TracePayload(names=["solver.cycle"], records=records,
                                pid=rank + 1)

        lb = load_balance_from_payloads(
            [payload(0, [0.2, 0.2]), payload(1, [0.3, 0.3])], n_ranks=2)
        assert lb.basis == "busy_s"
        assert lb.per_rank == pytest.approx([0.4, 0.6])
        assert lb.imbalance == pytest.approx(1.2)

    def test_roundtrip(self):
        lb = LoadBalance(basis="busy_s", per_rank=[1.0, 3.0])
        back = LoadBalance.from_dict(lb.to_dict())
        assert back.basis == "busy_s" and back.per_rank == [1.0, 3.0]


class TestOverlap:
    def test_efficiency_bounds(self):
        assert OverlapStats().efficiency == 0.0
        assert OverlapStats(hidden_s=1.0).efficiency == 1.0
        assert OverlapStats(hidden_s=1.0,
                            exposed_s=3.0).efficiency == pytest.approx(0.25)

    def test_from_spans(self):
        records = np.array(
            [(0, 0, 0, 0.0, 0.3),    # dist.overlap.interior  -> hidden
             (1, 0, 0, 0.3, 0.4),    # parti.gather.finish    -> exposed
             (2, 0, 0, 0.4, 0.9)],   # unrelated compute span
            dtype=SPAN_DTYPE)
        p = TracePayload(names=["dist.overlap.interior",
                                "parti.gather.finish", "flux"],
                         records=records)
        stats = overlap_from_spans(p)
        assert stats.hidden_s == pytest.approx(0.3)
        assert stats.exposed_s == pytest.approx(0.1)
        assert stats.efficiency == pytest.approx(0.75)


class TestAchievedRates:
    def test_count_weighted_merge(self):
        t = Tracer()
        t.gauge("observatory.rate.fused.edges_per_s", 100.0)
        t.gauge("observatory.rate.fused.edges_per_s", 200.0)
        t.gauge("observatory.rate.fused.vertices_per_s", 50.0)
        t.gauge("other.gauge", 1.0)
        rates = achieved_rates(t)
        assert set(rates) == {"fused"}
        assert rates["fused"]["edges_per_s"] == pytest.approx(150.0)
        assert rates["fused"]["vertices_per_s"] == pytest.approx(50.0)

    def test_rate_gauges_emitted_by_fused_pipeline(self, bump_struct, winf):
        from repro.kernels import FusedResidual
        from repro.solver import SolverConfig, build_boundary_data
        from repro.telemetry import use_tracer

        tracer = Tracer()
        with use_tracer(tracer):
            fused = FusedResidual(bump_struct,
                                  build_boundary_data(bump_struct),
                                  SolverConfig(), winf)
            w = np.tile(winf, (bump_struct.n_vertices, 1))
            fused.residual(w)
        rates = achieved_rates(tracer)
        assert rates, "expected observatory.rate.* gauges from residual()"
        (kind, metrics), = rates.items()
        assert metrics["edges_per_s"] > 0.0
        assert metrics["vertices_per_s"] > 0.0
