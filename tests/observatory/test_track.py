"""The benchmark regression tracker (benchmarks/track.py).

The acceptance pair: ``--check`` passes on the committed trajectory and
exits nonzero when a synthetic 20% slowdown is injected into a copy of
``BENCH_residual.json``.
"""

import importlib.util
import json
import shutil
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
_spec = importlib.util.spec_from_file_location(
    "track", REPO_ROOT / "benchmarks" / "track.py")
track = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(track)

RESIDUAL = REPO_ROOT / "BENCH_residual.json"
DISTRIBUTED = REPO_ROOT / "BENCH_distributed.json"
HISTORY = REPO_ROOT / "BENCH_history.jsonl"


def _args(history, residual=RESIDUAL, distributed=DISTRIBUTED, extra=()):
    return ["--history", str(history), "--residual", str(residual),
            "--distributed", str(distributed), *extra]


@pytest.fixture()
def seeded_history(tmp_path):
    """A history file ingested from the committed benchmark results."""
    history = tmp_path / "history.jsonl"
    rc = track.main(["--ingest", "--label", "seed", *_args(history)])
    assert rc == 0
    return history


def _slowed_residual_copy(tmp_path, factor=1.25) -> Path:
    """Copy BENCH_residual.json with the fused executor 20% slower."""
    doc = json.loads(RESIDUAL.read_text())
    for case in doc["cases"]:
        case["residual_ms"]["fused"] *= factor
        case["step_ms"]["fused"] *= factor
        case["speedup"]["fused_residual"] = (
            case["residual_ms"]["serial"] / case["residual_ms"]["fused"])
        case["speedup"]["fused_step"] = (
            case["step_ms"]["serial"] / case["step_ms"]["fused"])
    path = tmp_path / "BENCH_residual_slow.json"
    path.write_text(json.dumps(doc), encoding="utf-8")
    return path


class TestCheck:
    def test_committed_trajectory_passes(self):
        assert HISTORY.exists(), "seeded BENCH_history.jsonl missing"
        rc = track.main(["--check", *_args(HISTORY)])
        assert rc == 0

    def test_unchanged_files_pass(self, seeded_history):
        assert track.main(["--check", *_args(seeded_history)]) == 0

    def test_synthetic_20pct_slowdown_fails(self, seeded_history, tmp_path,
                                            capsys):
        slow = _slowed_residual_copy(tmp_path)
        rc = track.main(["--check",
                         *_args(seeded_history, residual=slow)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "speedup.fused_residual" in out

    def test_threshold_is_configurable(self, seeded_history, tmp_path):
        slow = _slowed_residual_copy(tmp_path)
        rc = track.main(["--check", "--threshold", "0.5",
                         *_args(seeded_history, residual=slow)])
        assert rc == 0

    def test_traffic_growth_fails_tight_limit(self, seeded_history,
                                              tmp_path):
        doc = json.loads(DISTRIBUTED.read_text())
        doc["cases"][0]["traffic"]["overlap"]["msgs_per_cycle"] *= 1.05
        grown = tmp_path / "BENCH_distributed_grown.json"
        grown.write_text(json.dumps(doc), encoding="utf-8")
        rc = track.main(["--check",
                         *_args(seeded_history, distributed=grown)])
        assert rc == 1

    def test_new_metric_does_not_fail(self, seeded_history, tmp_path):
        doc = json.loads(RESIDUAL.read_text())
        doc["cases"][0]["speedup"]["brand_new_executor"] = 3.0
        extended = tmp_path / "BENCH_residual_new.json"
        extended.write_text(json.dumps(doc), encoding="utf-8")
        rc = track.main(["--check",
                         *_args(seeded_history, residual=extended)])
        assert rc == 0

    def test_missing_history_is_an_error(self, tmp_path):
        rc = track.main(["--check", *_args(tmp_path / "none.jsonl")])
        assert rc == 2


class TestIngest:
    def test_appends_jsonl_entries(self, tmp_path):
        history = tmp_path / "history.jsonl"
        assert track.main(["--ingest", "--label", "a",
                           *_args(history)]) == 0
        assert track.main(["--ingest", "--label", "b",
                           *_args(history)]) == 0
        entries = track.read_history(history)
        assert [e["label"] for e in entries] == ["a", "b"]
        assert all(e["metrics"] for e in entries)

    def test_baseline_takes_latest_value(self, tmp_path):
        history = tmp_path / "history.jsonl"
        track.append_history(history, "old", {"x/speedup": 1.0})
        track.append_history(history, "new", {"x/speedup": 2.0})
        assert track.baseline_metrics(
            track.read_history(history)) == {"x/speedup": 2.0}


class TestReportMetrics:
    def test_extraction_from_report_json(self, tmp_path):
        report = {
            "case": "box27", "backend": "sim", "n_ranks": 2, "n_cycles": 2,
            "comm_matrix": {"n_ranks": 2, "n_cycles": 2,
                            "msgs": [[0, 4], [4, 0]],
                            "bytes": [[0, 800], [800, 0]]},
            "load_balance": {"basis": "flops", "per_rank": [1.0, 1.5],
                             "imbalance": 1.2},
            "overlap": {"hidden_s": 0.3, "exposed_s": 0.1,
                        "efficiency": 0.75},
        }
        metrics = track.metrics_from_report(report)
        tag = "report/box27-simx2"
        assert metrics[f"{tag}/msgs_per_cycle"] == pytest.approx(4.0)
        assert metrics[f"{tag}/bytes_per_cycle"] == pytest.approx(800.0)
        assert metrics[f"{tag}/neighbor_pairs"] == 2.0
        assert metrics[f"{tag}/load_imbalance"] == pytest.approx(1.2)
        assert metrics[f"{tag}/overlap_efficiency"] == pytest.approx(0.75)

    def test_check_with_report_roundtrip(self, tmp_path):
        report = tmp_path / "report.json"
        report.write_text(json.dumps({
            "case": "bump", "backend": "sim", "n_ranks": 2, "n_cycles": 1,
            "comm_matrix": {"n_ranks": 2, "n_cycles": 1,
                            "msgs": [[0, 2], [2, 0]],
                            "bytes": [[0, 10], [10, 0]]},
            "load_balance": {"imbalance": 1.1},
            "overlap": {"efficiency": 0.9},
        }), encoding="utf-8")
        history = tmp_path / "history.jsonl"
        args = _args(history, extra=["--report", str(report)])
        assert track.main(["--ingest", *args]) == 0
        assert track.main(["--check", *args]) == 0

    def test_missing_report_is_an_error(self, tmp_path):
        history = tmp_path / "history.jsonl"
        rc = track.main(["--ingest", *_args(
            history, extra=["--report", str(tmp_path / "none.json")])])
        assert rc == 2
