"""Integration tests: RunReport builders on real distributed runs."""

import numpy as np
import pytest

from repro.distsolver import DistributedEulerSolver
from repro.observatory import (RunReport, mp_run_report, render_markdown,
                               sim_run_report)
from repro.partition import recursive_spectral_bisection
from repro.solver import SolverConfig
from repro.telemetry import (Tracer, count_event, global_counters,
                             merge_global_counters, use_tracer)


@pytest.fixture(scope="module")
def asg2(bump_struct):
    return recursive_spectral_bisection(bump_struct.edges,
                                        bump_struct.n_vertices, 2)


def _run_sim(bump_struct, winf, asg, n_cycles=2):
    tracer = Tracer()
    with use_tracer(tracer):
        driver = DistributedEulerSolver(bump_struct, winf, asg,
                                        SolverConfig())
        w = driver.freestream_solution()
        for _ in range(n_cycles):
            w = driver.step(w)
    return driver, tracer


class TestSimReport:
    @pytest.fixture(scope="class")
    def report(self, bump_struct, winf, asg2):
        driver, tracer = _run_sim(bump_struct, winf, asg2)
        return sim_run_report("bump", driver, tracer, n_cycles=2,
                              wall_s=0.5)

    def test_shape(self, report, bump_struct):
        assert report.backend == "sim" and report.n_ranks == 2
        assert report.n_vertices == bump_struct.n_vertices
        assert report.comm_matrix.nonempty
        # Ranks never message themselves.
        assert np.trace(report.comm_matrix.msgs) == 0

    def test_load_balance(self, report):
        assert report.load_balance.basis == "flops"
        assert len(report.load_balance.per_rank) == 2
        assert report.load_balance.imbalance >= 1.0

    def test_overlap_efficiency_in_unit_interval(self, report):
        assert 0.0 < report.overlap.efficiency <= 1.0

    def test_model_rows(self, report):
        metrics = {row.metric for row in report.model_rows}
        assert {"comm_fraction", "time_per_edge_cycle",
                "aggregate_rate", "comm_s"} <= metrics
        for row in report.model_rows:
            assert row.predicted >= 0.0 and row.measured >= 0.0

    def test_json_roundtrip(self, report, tmp_path):
        path = report.to_json(tmp_path / "report.json")
        back = RunReport.from_json(path)
        assert back.case == report.case
        assert back.load_balance.imbalance == pytest.approx(
            report.load_balance.imbalance)
        np.testing.assert_array_equal(back.comm_matrix.msgs,
                                      report.comm_matrix.msgs)
        assert [r.metric for r in back.model_rows] == \
            [r.metric for r in report.model_rows]
        assert back.overlap.efficiency == pytest.approx(
            report.overlap.efficiency)

    def test_markdown_renders_all_sections(self, report):
        text = render_markdown(report)
        for heading in ("Communication matrix", "Predicted vs measured",
                        "Achieved rates", "Per-rank load"):
            assert heading in text
        assert "load imbalance" in text and "overlap efficiency" in text


class TestMpReport:
    @pytest.fixture(scope="class")
    def twin_and_tracer(self, bump_struct, winf, asg2):
        from repro.distsolver import run_distributed_mp

        twin, _ = _run_sim(bump_struct, winf, asg2)
        tracer = Tracer()
        w0 = np.tile(winf, (bump_struct.n_vertices, 1))
        run_distributed_mp(twin.dmesh, w0, winf, SolverConfig(),
                           n_cycles=2, tracer=tracer)
        return twin, tracer

    def test_all_ranks_merged(self, twin_and_tracer):
        twin, tracer = twin_and_tracer
        report = mp_run_report("bump", twin, tracer, n_cycles=2,
                               wall_s=1.0)
        assert report.backend == "mp"
        assert report.comm_matrix.nonempty
        assert report.comm_matrix.msgs.shape == (2, 2)
        assert report.load_balance.basis == "busy_s"
        assert all(v > 0.0 for v in report.load_balance.per_rank)
        assert report.model_rows

    def test_matches_sim_comm_matrix(self, twin_and_tracer, bump_struct,
                                     winf, asg2):
        from repro.observatory import comm_matrix_from_log

        twin, tracer = twin_and_tracer
        report = mp_run_report("bump", twin, tracer, n_cycles=2,
                               wall_s=1.0)
        sim_cm = comm_matrix_from_log(twin.machine.log, n_cycles=2)
        np.testing.assert_array_equal(report.comm_matrix.msgs, sim_cm.msgs)


class TestCounterMerge:
    def test_merge_global_counters_folds_delta(self):
        before = global_counters().get("observatory.test.sentinel", 0.0)
        merge_global_counters({"observatory.test.sentinel": 3.0})
        after = global_counters()["observatory.test.sentinel"]
        assert after == pytest.approx(before + 3.0)

    def test_clean_mp_run_does_not_duplicate_parent_events(
            self, bump_struct, winf, asg2):
        """Fork-inherited parent counters must not be re-merged.

        The mp workers inherit the parent's event counters at fork; the
        delta-against-baseline logic in the worker must keep a clean run
        from echoing them back (which would double-count every parent
        event per rank).
        """
        from repro.distsolver import run_distributed_mp

        twin, _ = _run_sim(bump_struct, winf, asg2, n_cycles=1)
        count_event("observatory.test.parent_event", 7.0)
        before = global_counters()["observatory.test.parent_event"]
        w0 = np.tile(winf, (bump_struct.n_vertices, 1))
        run_distributed_mp(twin.dmesh, w0, winf, SolverConfig(),
                           n_cycles=1)
        after = global_counters()["observatory.test.parent_event"]
        assert after == pytest.approx(before)
