"""Tests for the three partitioners and quality metrics."""

import numpy as np
import pytest

from repro.partition import (cut_edges, fiedler_vector, greedy_bfs_partition,
                             lanczos_extremal, partition_metrics,
                             recursive_coordinate_bisection,
                             recursive_spectral_bisection)
from repro.mesh import vertex_graph

ALL_PARTITIONERS = ["rsb", "rcb", "bfs"]


def run_partitioner(name, mesh, struct, p):
    if name == "rsb":
        return recursive_spectral_bisection(struct.edges, mesh.n_vertices, p)
    if name == "rcb":
        return recursive_coordinate_bisection(mesh.vertices, p)
    return greedy_bfs_partition(struct.edges, mesh.n_vertices, p)


class TestLanczos:
    def test_finds_dominant_eigenvector(self, rng):
        n = 60
        q, _ = np.linalg.qr(rng.standard_normal((n, n)))
        evals = np.linspace(1, 10, n)
        mat = (q * evals) @ q.T
        vec = lanczos_extremal(lambda x: mat @ x, n, rng)
        ritz = vec @ mat @ vec
        assert ritz == pytest.approx(10.0, rel=1e-4)

    def test_deflation_respected(self, rng):
        n = 40
        ones = np.full(n, 1.0 / np.sqrt(n))
        mat = np.diag(np.arange(n, dtype=float)) + 100.0 * np.outer(ones, ones)
        vec = lanczos_extremal(lambda x: mat @ x, n, rng, deflate=ones)
        assert abs(ones @ vec) < 1e-8


class TestFiedler:
    def test_two_cliques_separated(self, rng):
        # Two 10-cliques joined by one edge: the Fiedler vector separates
        # them by sign.
        edges = []
        for base in (0, 10):
            for i in range(10):
                for j in range(i + 1, 10):
                    edges.append((base + i, base + j))
        edges.append((0, 10))
        adj = vertex_graph(np.array(edges), 20)
        f = fiedler_vector(adj, rng)
        signs_a = np.sign(f[:10])
        signs_b = np.sign(f[10:])
        assert np.all(signs_a == signs_a[0])
        assert np.all(signs_b == signs_b[0])
        assert signs_a[0] != signs_b[0]

    def test_orthogonal_to_constant(self, bump_struct, rng):
        adj = vertex_graph(bump_struct.edges, bump_struct.n_vertices)
        f = fiedler_vector(adj, rng)
        assert abs(f.sum()) < 1e-6 * np.sqrt(bump_struct.n_vertices)


class TestPartitioners:
    @pytest.mark.parametrize("name", ALL_PARTITIONERS)
    @pytest.mark.parametrize("p", [2, 4, 7, 16])
    def test_all_parts_used_and_balanced(self, name, p, bump, bump_struct):
        asg = run_partitioner(name, bump, bump_struct, p)
        m = partition_metrics(bump_struct.edges, asg, p)
        assert np.all(m.part_sizes > 0)
        assert m.imbalance < 1.35

    @pytest.mark.parametrize("name", ALL_PARTITIONERS)
    def test_every_vertex_assigned(self, name, bump, bump_struct):
        asg = run_partitioner(name, bump, bump_struct, 8)
        assert asg.shape == (bump.n_vertices,)
        assert asg.min() >= 0 and asg.max() < 8

    @pytest.mark.parametrize("name", ALL_PARTITIONERS)
    def test_single_part_trivial(self, name, bump, bump_struct):
        asg = run_partitioner(name, bump, bump_struct, 1)
        assert np.all(asg == 0)

    def test_rsb_deterministic_with_seed(self, bump, bump_struct):
        a1 = recursive_spectral_bisection(bump_struct.edges,
                                          bump.n_vertices, 8, seed=42)
        a2 = recursive_spectral_bisection(bump_struct.edges,
                                          bump.n_vertices, 8, seed=42)
        np.testing.assert_array_equal(a1, a2)

    def test_rsb_cut_no_worse_than_bfs(self, bump, bump_struct):
        # The paper's rationale for paying for spectral bisection.
        rsb = recursive_spectral_bisection(bump_struct.edges,
                                           bump.n_vertices, 8)
        bfs = greedy_bfs_partition(bump_struct.edges, bump.n_vertices, 8)
        cut_rsb = int(cut_edges(bump_struct.edges, rsb).sum())
        cut_bfs = int(cut_edges(bump_struct.edges, bfs).sum())
        assert cut_rsb <= 1.2 * cut_bfs

    def test_rejects_zero_parts(self, bump, bump_struct):
        with pytest.raises(ValueError):
            recursive_spectral_bisection(bump_struct.edges,
                                         bump.n_vertices, 0)
        with pytest.raises(ValueError):
            recursive_coordinate_bisection(bump.vertices, 0)
        with pytest.raises(ValueError):
            greedy_bfs_partition(bump_struct.edges, bump.n_vertices, 0)


class TestMetrics:
    def test_cut_edges_mask(self):
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        asg = np.array([0, 0, 1, 1])
        np.testing.assert_array_equal(cut_edges(edges, asg),
                                      [False, True, False])

    def test_metrics_of_perfect_split(self):
        # Two disjoint triangles split apart: zero cut.
        edges = np.array([[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5]])
        asg = np.array([0, 0, 0, 1, 1, 1])
        m = partition_metrics(edges, asg, 2)
        assert m.n_cut_edges == 0
        assert m.imbalance == pytest.approx(1.0)
        assert m.max_neighbors == 0

    def test_surface_to_volume(self):
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        asg = np.array([0, 0, 1, 1])
        m = partition_metrics(edges, asg, 2)
        # One cut edge -> 1 boundary vertex per side of 2 vertices.
        np.testing.assert_allclose(m.surface_to_volume, [0.5, 0.5])

    def test_report_renders(self, bump, bump_struct):
        asg = recursive_coordinate_bisection(bump.vertices, 4)
        text = partition_metrics(bump_struct.edges, asg).report()
        assert "cut edges" in text
