"""Tests for the KL/FM-style partition boundary refinement."""

import numpy as np
import pytest

from repro.partition import (greedy_bfs_partition, partition_metrics,
                             recursive_coordinate_bisection,
                             refine_partition, refinement_gain)


class TestRefinePartition:
    def test_never_increases_cut(self, bump, bump_struct):
        for p in (2, 4, 8):
            asg = recursive_coordinate_bisection(bump.vertices, p)
            before = refinement_gain(bump_struct.edges, asg)
            after = refinement_gain(
                bump_struct.edges,
                refine_partition(bump_struct.edges, asg, p))
            assert after <= before

    def test_improves_bfs_partition(self, bump, bump_struct):
        asg = greedy_bfs_partition(bump_struct.edges, bump.n_vertices, 8)
        refined = refine_partition(bump_struct.edges, asg, 8)
        assert refinement_gain(bump_struct.edges, refined) < \
            refinement_gain(bump_struct.edges, asg)

    def test_balance_respected(self, bump, bump_struct):
        asg = recursive_coordinate_bisection(bump.vertices, 8)
        refined = refine_partition(bump_struct.edges, asg, 8,
                                   imbalance_tol=0.05)
        m = partition_metrics(bump_struct.edges, refined, 8)
        assert m.imbalance < 1.12

    def test_input_not_mutated(self, bump, bump_struct):
        asg = recursive_coordinate_bisection(bump.vertices, 4)
        before = asg.copy()
        refine_partition(bump_struct.edges, asg, 4)
        np.testing.assert_array_equal(asg, before)

    def test_zero_cut_fixed_point(self):
        # Two disjoint triangles already perfectly split: nothing to do.
        edges = np.array([[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5]])
        asg = np.array([0, 0, 0, 1, 1, 1], dtype=np.int32)
        refined = refine_partition(edges, asg, 2)
        np.testing.assert_array_equal(refined, asg)

    def test_distributed_solver_still_exact_after_refinement(self, bump,
                                                             bump_struct,
                                                             winf):
        # Refined partitions feed the same machinery; the distributed
        # solver must stay bit-equivalent to sequential.
        from repro.distsolver import DistributedEulerSolver
        from repro.solver import EulerSolver, SolverConfig
        asg = refine_partition(
            bump_struct.edges,
            recursive_coordinate_bisection(bump.vertices, 4), 4)
        dist = DistributedEulerSolver(bump_struct, winf, asg, SolverConfig())
        seq = EulerSolver(bump_struct, winf, SolverConfig())
        w_d = dist.step(dist.freestream_solution())
        w_s = seq.step(seq.freestream_solution())
        np.testing.assert_allclose(dist.collect(w_d), w_s,
                                   rtol=1e-12, atol=1e-13)
