"""Property-based tests (hypothesis) on the core invariants.

These cover the data structures whose correctness everything else leans
on: the dual-mesh closure identity, state conversions, edge colouring,
translation tables, gather schedules and partitions — each exercised over
randomly generated inputs rather than the fixed fixtures.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st, HealthCheck

from repro.coloring import color_edges, verify_coloring
from repro.mesh import TetMesh, box_mesh, build_edge_structure, closure_residual
from repro.parti import SimMachine, TranslationTable, build_gather_schedule
from repro.partition import partition_metrics, recursive_coordinate_bisection
from repro.scatter import EdgeScatter
from repro.state import (conserved_from_primitive, pressure,
                         primitive_from_conserved)

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])


# ---------------------------------------------------------------------------
# State conversions
# ---------------------------------------------------------------------------
@given(rho=st.floats(0.05, 20.0), u=st.floats(-3, 3), v=st.floats(-3, 3),
       w=st.floats(-3, 3), p=st.floats(0.05, 20.0))
@settings(max_examples=200, **COMMON)
def test_primitive_roundtrip(rho, u, v, w, p):
    cons = conserved_from_primitive(rho, u, v, w, p)[None]
    r2, u2, v2, w2, p2 = primitive_from_conserved(cons)
    assert abs(r2[0] - rho) < 1e-12 * rho
    assert abs(p2[0] - p) < 1e-9 * max(p, 1.0)
    assert abs(u2[0] - u) < 1e-10 * max(abs(u), 1.0)


@given(rho=st.floats(0.05, 20.0), u=st.floats(-3, 3), p=st.floats(0.05, 20.0))
@settings(max_examples=100, **COMMON)
def test_pressure_positive_for_physical_input(rho, u, p):
    cons = conserved_from_primitive(rho, u, 0.0, 0.0, p)[None]
    assert pressure(cons)[0] > 0


# ---------------------------------------------------------------------------
# Dual-mesh closure under random distortion
# ---------------------------------------------------------------------------
@given(seed=st.integers(0, 10_000), n=st.integers(2, 4),
       amp=st.floats(0.0, 0.12))
@settings(max_examples=25, **COMMON)
def test_closure_identity_random_meshes(seed, n, amp):
    rng = np.random.default_rng(seed)
    mesh = box_mesh(n, n, n)
    verts = mesh.vertices.copy()
    h = 1.0 / n
    interior = np.all((verts > h / 2) & (verts < 1 - h / 2), axis=1)
    verts[interior] += rng.uniform(-amp * h, amp * h,
                                   (int(interior.sum()), 3))
    struct = build_edge_structure(TetMesh(verts, mesh.tets))
    assert np.abs(closure_residual(struct)).max() < 1e-13


@given(seed=st.integers(0, 10_000), n=st.integers(2, 4))
@settings(max_examples=25, **COMMON)
def test_dual_volumes_partition_domain(seed, n):
    mesh = box_mesh(n, n, n)
    assert abs(mesh.dual_volumes().sum() - mesh.total_volume) < 1e-12


# ---------------------------------------------------------------------------
# Edge colouring on random graphs
# ---------------------------------------------------------------------------
@st.composite
def random_graph(draw):
    n = draw(st.integers(2, 60))
    n_edges = draw(st.integers(1, min(200, n * (n - 1) // 2)))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    pairs = set()
    while len(pairs) < n_edges:
        i, j = rng.integers(0, n, 2)
        if i != j:
            pairs.add((min(i, j), max(i, j)))
    return np.array(sorted(pairs), dtype=np.int64), n


@given(graph=random_graph())
@settings(max_examples=60, **COMMON)
def test_coloring_conflict_free(graph):
    edges, n = graph
    col = color_edges(edges, n)
    assert verify_coloring(edges, col, n)
    assert sum(len(g) for g in col.groups) == len(edges)


@given(graph=random_graph())
@settings(max_examples=40, **COMMON)
def test_coloring_bound(graph):
    # Greedy edge colouring never needs more than 2*maxdeg - 1 colours.
    edges, n = graph
    col = color_edges(edges, n)
    degree = np.zeros(n, dtype=int)
    np.add.at(degree, edges.ravel(), 1)
    assert col.n_colors <= 2 * degree.max() - 1


# ---------------------------------------------------------------------------
# Scatter operators agree with a dense reference
# ---------------------------------------------------------------------------
@given(graph=random_graph(), seed=st.integers(0, 1000))
@settings(max_examples=40, **COMMON)
def test_edge_scatter_matches_dense(graph, seed):
    edges, n = graph
    rng = np.random.default_rng(seed)
    vals = rng.standard_normal(len(edges))
    s = EdgeScatter(edges, n)
    dense = np.zeros(n)
    for (i, j), v in zip(edges, vals):
        dense[i] += v
        dense[j] -= v
    np.testing.assert_allclose(s.signed(vals), dense, atol=1e-10)


# ---------------------------------------------------------------------------
# Translation tables & schedules
# ---------------------------------------------------------------------------
@given(n=st.integers(4, 300), p=st.integers(1, 8),
       seed=st.integers(0, 10_000))
@settings(max_examples=50, **COMMON)
def test_translation_roundtrip(n, p, seed):
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, p, n).astype(np.int32)
    table = TranslationTable(assignment, p)
    values = rng.standard_normal(n)
    blocks = table.scatter_global_array(values)
    np.testing.assert_array_equal(table.gather_global_array(blocks), values)
    # dereference consistency
    owners, locs = table.dereference(np.arange(n))
    for g in range(0, n, max(1, n // 13)):
        assert table.owned_globals[owners[g]][locs[g]] == g


@given(n=st.integers(8, 200), p=st.integers(2, 6),
       seed=st.integers(0, 10_000))
@settings(max_examples=30, **COMMON)
def test_gather_schedule_completeness(n, p, seed):
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, p, n).astype(np.int32)
    table = TranslationTable(assignment, p)
    required = [rng.choice(n, rng.integers(1, n), replace=False)
                for _ in range(p)]
    sched = build_gather_schedule(required, table)
    values = rng.standard_normal(n)
    owned = table.scatter_global_array(values)
    ghosts = sched.gather(SimMachine(p), owned)
    for r in range(p):
        # every required off-processor id is present with correct value
        req = np.unique(required[r])
        req = req[table.owner_of(req) != r]
        assert set(req.tolist()) == set(sched.ghost_globals[r].tolist())
        np.testing.assert_allclose(ghosts[r], values[sched.ghost_globals[r]])


# ---------------------------------------------------------------------------
# Partitions
# ---------------------------------------------------------------------------
@given(n=st.integers(8, 400), p=st.integers(1, 8),
       seed=st.integers(0, 10_000))
@settings(max_examples=40, **COMMON)
def test_rcb_balance_property(n, p, seed):
    rng = np.random.default_rng(seed)
    coords = rng.standard_normal((n, 3))
    asg = recursive_coordinate_bisection(coords, p)
    sizes = np.bincount(asg, minlength=p)
    if p <= n:
        assert sizes.max() - sizes.min() <= max(2, 0.2 * n / p)
        assert np.all(sizes > 0)


@given(graph=random_graph(), p=st.integers(1, 4))
@settings(max_examples=30, **COMMON)
def test_partition_metrics_consistency(graph, p):
    edges, n = graph
    rng = np.random.default_rng(0)
    asg = rng.integers(0, p, n).astype(np.int32)
    m = partition_metrics(edges, asg, p)
    assert m.part_sizes.sum() == n
    assert 0 <= m.cut_fraction <= 1
    assert m.n_cut_edges <= len(edges)


# ---------------------------------------------------------------------------
# Refinement properties
# ---------------------------------------------------------------------------
@given(seed=st.integers(0, 5000), n=st.integers(1, 3))
@settings(max_examples=15, **COMMON)
def test_refinement_preserves_volume_and_closure(seed, n):
    from repro.mesh import refine_mesh
    rng = np.random.default_rng(seed)
    mesh = box_mesh(n, n, n)
    verts = mesh.vertices.copy()
    h = 1.0 / n
    interior = np.all((verts > h / 2) & (verts < 1 - h / 2), axis=1)
    if interior.any():
        verts[interior] += rng.uniform(-0.1 * h, 0.1 * h,
                                       (int(interior.sum()), 3))
    base = TetMesh(verts, mesh.tets)
    fine = refine_mesh(base)
    assert abs(fine.total_volume - base.total_volume) < 1e-12
    assert fine.n_tets == 8 * base.n_tets
    struct = build_edge_structure(fine)
    assert np.abs(closure_residual(struct)).max() < 1e-12


# ---------------------------------------------------------------------------
# Transfer-operator adjoint property on random mesh pairs
# ---------------------------------------------------------------------------
@given(seed=st.integers(0, 5000))
@settings(max_examples=10, **COMMON)
def test_transfer_adjoint_property(seed):
    from repro.multigrid import build_transfer
    rng = np.random.default_rng(seed)
    fine = box_mesh(4, 4, 4)
    coarse = box_mesh(2, 2, 2)
    op = build_transfer(fine.vertices, coarse)
    u = rng.standard_normal(coarse.n_vertices)
    v = rng.standard_normal(fine.n_vertices)
    lhs = float(op.apply(u) @ v)
    rhs = float(u @ op.transpose_apply(v))
    assert abs(lhs - rhs) < 1e-10 * max(abs(lhs), 1.0)


# ---------------------------------------------------------------------------
# Balanced colouring properties
# ---------------------------------------------------------------------------
@given(graph=random_graph())
@settings(max_examples=40, **COMMON)
def test_balanced_coloring_conflict_free(graph):
    from repro.coloring import color_edges_balanced, verify_coloring
    edges, n = graph
    col = color_edges_balanced(edges, n)
    assert verify_coloring(edges, col, n)
    assert sum(len(g) for g in col.groups) == len(edges)


# ---------------------------------------------------------------------------
# Partition boundary refinement properties
# ---------------------------------------------------------------------------
@given(graph=random_graph(), p=st.integers(2, 4), seed=st.integers(0, 1000))
@settings(max_examples=25, **COMMON)
def test_refinement_never_worse(graph, p, seed):
    from repro.partition import refine_partition, refinement_gain
    edges, n = graph
    if n < 2 * p:
        return
    rng = np.random.default_rng(seed)
    asg = rng.integers(0, p, n).astype(np.int32)
    # ensure all parts non-empty
    asg[:p] = np.arange(p)
    before = refinement_gain(edges, asg)
    refined = refine_partition(edges, asg, p, imbalance_tol=0.5)
    assert refinement_gain(edges, refined) <= before
    assert np.sort(np.unique(refined)).tolist() == sorted(set(refined.tolist()))


# ---------------------------------------------------------------------------
# Incremental schedule chain: union correctness over many increments
# ---------------------------------------------------------------------------
@given(n=st.integers(20, 150), p=st.integers(2, 5),
       seed=st.integers(0, 5000), k=st.integers(2, 5))
@settings(max_examples=20, **COMMON)
def test_incremental_chain_union(n, p, seed, k):
    from repro.parti import (IncrementalScheduleBuilder, SimMachine,
                             TranslationTable)
    rng = np.random.default_rng(seed)
    assignment = rng.integers(0, p, n).astype(np.int32)
    table = TranslationTable(assignment, p)
    builder = IncrementalScheduleBuilder(table)
    machine = SimMachine(p)
    values = rng.standard_normal(n)
    owned = table.scatter_global_array(values)
    store = [None] * p
    seen = [set() for _ in range(p)]
    for _ in range(k):
        req = [rng.choice(n, rng.integers(1, n), replace=False)
               for _ in range(p)]
        inc = builder.add(req)
        store = [np.resize(store[r] if store[r] is not None else
                           np.zeros(0), builder.ghost_count(r))
                 for r in range(p)]
        builder.gather_increment(machine, inc, owned, store)
        for r in range(p):
            uniq = np.unique(req[r])
            uniq = uniq[table.owner_of(uniq) != r]
            np.testing.assert_allclose(store[r][inc.slots_for_required[r]],
                                       values[uniq])
            seen[r].update(uniq.tolist())
    # total ghost slots == union of everything ever requested
    for r in range(p):
        assert builder.ghost_count(r) == len(seen[r])
