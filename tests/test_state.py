"""Tests for conserved/primitive conversions and flux tensors."""

import numpy as np
import pytest

from repro.constants import GAMMA
from repro.state import (conserved_from_primitive, flux_vectors,
                         freestream_state, is_physical, mach_number,
                         pressure, primitive_from_conserved, sound_speed,
                         total_enthalpy, velocity)


class TestConversions:
    def test_roundtrip(self, rng):
        rho = rng.uniform(0.5, 2.0, 100)
        u, v, w = rng.standard_normal((3, 100)) * 0.3
        p = rng.uniform(0.5, 2.0, 100)
        cons = conserved_from_primitive(rho, u, v, w, p)
        r2, u2, v2, w2, p2 = primitive_from_conserved(cons)
        np.testing.assert_allclose(r2, rho, rtol=1e-14)
        np.testing.assert_allclose(u2, u, rtol=1e-13, atol=1e-15)
        np.testing.assert_allclose(p2, p, rtol=1e-13)

    def test_scalar_input(self):
        cons = conserved_from_primitive(1.0, 0.5, 0.0, 0.0, 1.0 / GAMMA)
        assert cons.shape == (5,)

    def test_pressure_of_rest_state(self):
        cons = conserved_from_primitive(1.0, 0.0, 0.0, 0.0, 2.0)
        assert pressure(cons) == pytest.approx(2.0)

    def test_sound_speed_normalisation(self):
        # rho=1, p=1/gamma  ->  c = 1 by construction.
        cons = conserved_from_primitive(1.0, 0.3, 0.0, 0.0, 1.0 / GAMMA)
        assert sound_speed(cons) == pytest.approx(1.0)


class TestFreestream:
    def test_mach_magnitude(self):
        w = freestream_state(0.768, 1.116)
        assert mach_number(w[None])[0] == pytest.approx(0.768)

    def test_alpha_tilts_velocity(self):
        w = freestream_state(0.768, 1.116)
        vel = velocity(w[None])[0]
        alpha = np.arctan2(vel[2], vel[0])
        assert np.rad2deg(alpha) == pytest.approx(1.116)

    def test_beta_sideslip(self):
        w = freestream_state(0.5, 0.0, beta_deg=3.0)
        vel = velocity(w[None])[0]
        assert np.rad2deg(np.arcsin(vel[1] / 0.5)) == pytest.approx(3.0)

    def test_zero_mach_is_rest(self):
        w = freestream_state(0.0)
        np.testing.assert_allclose(w[1:4], 0.0)


class TestFluxVectors:
    def test_rest_state_pressure_only(self):
        w = conserved_from_primitive(1.0, 0.0, 0.0, 0.0, 1.0)[None]
        f = flux_vectors(w)[0]
        np.testing.assert_allclose(f[0], 0.0)       # no mass flux
        np.testing.assert_allclose(f[4], 0.0)       # no energy flux
        np.testing.assert_allclose(f[1:4, :], np.eye(3))  # pressure diag

    def test_mass_flux_is_momentum(self, rng):
        w = conserved_from_primitive(
            rng.uniform(0.5, 2, 10), *rng.standard_normal((3, 10)) * 0.2,
            rng.uniform(0.5, 2, 10))
        f = flux_vectors(w)
        np.testing.assert_allclose(f[:, 0, :], w[:, 1:4])

    def test_galilean_structure(self):
        # F(w) . n for n aligned with velocity equals (rho u^2 + p, ...) etc.
        w = conserved_from_primitive(1.2, 0.4, 0.0, 0.0, 0.9)[None]
        f = flux_vectors(w)[0]
        assert f[1, 0] == pytest.approx(1.2 * 0.4 ** 2 + 0.9)
        h = total_enthalpy(w)[0]
        assert f[4, 0] == pytest.approx(1.2 * 0.4 * h)


class TestIsPhysical:
    def test_freestream_physical(self, winf):
        assert is_physical(winf[None])

    def test_negative_density_flagged(self, winf):
        w = np.tile(winf, (3, 1))
        w[1, 0] = -0.1
        assert not is_physical(w)

    def test_negative_pressure_flagged(self, winf):
        w = np.tile(winf, (3, 1))
        w[2, 4] = 0.0       # energy below kinetic -> negative pressure
        assert not is_physical(w)

    def test_nan_flagged(self, winf):
        w = np.tile(winf, (3, 1))
        w[0, 2] = np.nan
        assert not is_physical(w)
