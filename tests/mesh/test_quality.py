"""Tests for mesh quality metrics."""

import numpy as np
import pytest

from repro.mesh import TetMesh, box_mesh, mesh_quality
from repro.mesh.quality import edge_lengths, radius_ratios


class TestRadiusRatios:
    def test_regular_tet_scores_one(self):
        # Regular tetrahedron from alternating cube corners.
        verts = np.array([[0.0, 0, 0], [1, 1, 0], [1, 0, 1], [0, 1, 1]])
        mesh = TetMesh(verts, np.array([[0, 1, 2, 3]]))
        assert radius_ratios(mesh)[0] == pytest.approx(1.0, abs=1e-12)

    def test_flat_tet_scores_low(self):
        verts = np.array([[0.0, 0, 0], [1, 0, 0], [0, 1, 0], [0.3, 0.3, 1e-3]])
        mesh = TetMesh(verts, np.array([[0, 1, 2, 3]]))
        assert radius_ratios(mesh)[0] < 0.02

    def test_scale_invariant(self):
        verts = np.array([[0.0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]])
        m1 = TetMesh(verts, np.array([[0, 1, 2, 3]]))
        m2 = TetMesh(100.0 * verts, np.array([[0, 1, 2, 3]]))
        assert radius_ratios(m1)[0] == pytest.approx(radius_ratios(m2)[0])

    def test_all_in_unit_interval(self, bump):
        q = radius_ratios(bump)
        assert np.all(q > 0) and np.all(q <= 1.0 + 1e-12)


class TestEdgeLengths:
    def test_unit_box_edges(self, box, box_struct):
        lengths = edge_lengths(box.vertices, box_struct.edges)
        h = 0.25
        # Freudenthal boxes have axis edges, face diagonals and body diagonals.
        expected = {h, h * np.sqrt(2), h * np.sqrt(3)}
        found = set(np.round(np.unique(lengths), 10))
        assert found == set(np.round(sorted(expected), 10))


class TestMeshQuality:
    def test_summary_counts(self, box, box_struct):
        q = mesh_quality(box, box_struct)
        assert q.n_vertices == box.n_vertices
        assert q.n_tets == box.n_tets
        assert q.n_edges == box_struct.n_edges
        assert q.n_bfaces == box_struct.n_bfaces

    def test_degree_bounds(self, box, box_struct):
        q = mesh_quality(box, box_struct)
        assert 1 <= q.min_degree <= q.mean_degree <= q.max_degree

    def test_report_renders(self, box):
        text = mesh_quality(box).report()
        assert "nodes" in text and "quality" in text

    def test_builds_struct_if_missing(self, box):
        q = mesh_quality(box)
        assert q.n_edges > 0
