"""Tests for red tet refinement."""

import numpy as np
import pytest

from repro.mesh import (PATCH_WALL, box_mesh, bump_channel,
                        build_edge_structure, closure_residual, refine_mesh,
                        refine_tets)
from repro.mesh.quality import radius_ratios


class TestRefineTets:
    def test_eight_children_per_tet(self, box):
        _, fine = refine_tets(box.vertices, box.tets)
        assert fine.shape[0] == 8 * box.n_tets

    def test_coarse_vertices_preserved(self, box):
        verts, _ = refine_tets(box.vertices, box.tets)
        np.testing.assert_array_equal(verts[:box.n_vertices], box.vertices)

    def test_vertex_count(self, box, box_struct):
        verts, _ = refine_tets(box.vertices, box.tets)
        assert verts.shape[0] == box.n_vertices + box_struct.n_edges


class TestRefineMesh:
    def test_volume_preserved_exactly(self, bump):
        fine = refine_mesh(bump)
        assert fine.total_volume == pytest.approx(bump.total_volume,
                                                  rel=1e-14)

    def test_all_positive_volumes(self, bump):
        fine = refine_mesh(bump)
        assert np.all(fine.volumes > 0)

    def test_conforming(self):
        # Conformity check: boundary face count of the refined box must be
        # exactly 4x the coarse count (every surface triangle splits into
        # 4); any interior crack would add spurious boundary faces.
        mesh = box_mesh(3, 3, 3)
        coarse_struct = build_edge_structure(mesh)
        fine_struct = build_edge_structure(refine_mesh(mesh))
        assert fine_struct.n_bfaces == 4 * coarse_struct.n_bfaces

    def test_closure_identity(self):
        fine = refine_mesh(bump_channel(6, 2, 3))
        struct = build_edge_structure(fine)
        assert np.abs(closure_residual(struct)).max() < 1e-13

    def test_quality_not_destroyed(self):
        # The shortest-diagonal octahedron split keeps child quality within
        # a modest factor of the parent quality.
        mesh = box_mesh(2, 2, 2)
        q_parent = radius_ratios(mesh).min()
        fine = refine_mesh(mesh)
        q_child = radius_ratios(fine).min()
        assert q_child > 0.3 * q_parent

    def test_repeated_refinement(self):
        mesh = box_mesh(2, 2, 2)
        twice = refine_mesh(refine_mesh(mesh))
        assert twice.n_tets == 64 * mesh.n_tets
        assert twice.total_volume == pytest.approx(mesh.total_volume)

    def test_boundary_tags_survive(self):
        coarse = bump_channel(6, 2, 3)
        fine = refine_mesh(coarse)
        struct = build_edge_structure(fine)
        assert np.count_nonzero(struct.bface_tags == PATCH_WALL) > 0

    def test_refined_mesh_solves(self, winf):
        from repro.solver import EulerSolver
        fine = refine_mesh(bump_channel(6, 2, 3))
        solver = EulerSolver(fine, winf)
        w = solver.step(solver.freestream_solution())
        assert np.all(np.isfinite(w))

    def test_drops_into_multigrid_as_finest_level(self, winf):
        # The paper's adaptive-refinement pathway: a refined mesh becomes
        # the new finest grid of the (unrelated-grids) multigrid sequence.
        from repro.multigrid import MultigridHierarchy, mg_cycle
        coarse = bump_channel(6, 2, 3)
        hierarchy = MultigridHierarchy([refine_mesh(coarse), coarse], winf)
        w = hierarchy.freestream_solution()
        w1 = mg_cycle(hierarchy, w, gamma=1)
        assert np.all(np.isfinite(w1))
