"""Tests for mesh persistence."""

import numpy as np
import pytest

from repro.mesh import build_edge_structure, bump_channel, load_mesh, save_mesh


class TestSaveLoad:
    def test_roundtrip_geometry(self, tmp_path, bump):
        path = tmp_path / "mesh.npz"
        save_mesh(path, bump)
        loaded, part = load_mesh(path)
        np.testing.assert_array_equal(loaded.vertices, bump.vertices)
        np.testing.assert_array_equal(loaded.tets, bump.tets)
        assert part is None
        assert loaded.name == bump.name

    def test_roundtrip_boundary_tags(self, tmp_path, bump, bump_struct):
        path = tmp_path / "mesh.npz"
        save_mesh(path, bump)
        loaded, _ = load_mesh(path)
        struct2 = build_edge_structure(loaded)
        np.testing.assert_array_equal(struct2.bface_tags,
                                      bump_struct.bface_tags)

    def test_roundtrip_partition(self, tmp_path, bump, rng):
        path = tmp_path / "mesh.npz"
        part = rng.integers(0, 4, bump.n_vertices).astype(np.int32)
        save_mesh(path, bump, partition=part)
        _, loaded_part = load_mesh(path)
        np.testing.assert_array_equal(loaded_part, part)

    def test_rejects_bad_partition_shape(self, tmp_path, bump):
        with pytest.raises(ValueError, match="one rank per vertex"):
            save_mesh(tmp_path / "m.npz", bump, partition=np.zeros(3))

    def test_loaded_mesh_solves(self, tmp_path, winf):
        from repro.solver import EulerSolver
        mesh = bump_channel(6, 2, 3)
        path = tmp_path / "m.npz"
        save_mesh(path, mesh)
        loaded, _ = load_mesh(path)
        solver = EulerSolver(loaded, winf)
        w = solver.step(solver.freestream_solution())
        assert np.all(np.isfinite(w))
