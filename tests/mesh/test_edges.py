"""Tests for the edge-based dual structure — the scheme's geometric core."""

import numpy as np
import pytest

from repro.mesh import (PATCH_FARFIELD, PATCH_SYMMETRY, PATCH_WALL, TetMesh,
                        box_mesh, build_edge_structure, closure_residual)
from repro.mesh.edges import extract_boundary_faces, extract_edges


class TestExtractEdges:
    def test_single_tet_has_six_edges(self):
        edges, ids = extract_edges(np.array([[0, 1, 2, 3]]))
        assert edges.shape == (6, 2)
        assert ids.shape == (1, 6)

    def test_edges_sorted_low_high(self, box_struct):
        assert np.all(box_struct.edges[:, 0] < box_struct.edges[:, 1])

    def test_edges_unique(self, box_struct):
        uniq = np.unique(box_struct.edges, axis=0)
        assert uniq.shape == box_struct.edges.shape

    def test_two_tets_share_face_edges(self):
        # Two tets glued on face (1,2,3): 6 + 6 - 3 shared = 9 edges.
        verts = np.array([[0.0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1],
                          [1, 1, 1]])
        edges, _ = extract_edges(np.array([[0, 1, 2, 3], [4, 1, 3, 2]]))
        assert edges.shape[0] == 9

    def test_euler_characteristic_box(self, box, box_struct):
        # V - E + F - T = 1 for a simply connected 3-ball triangulation.
        faces = box.tets[:, [[1, 2, 3], [0, 3, 2], [0, 1, 3], [0, 2, 1]]]
        n_faces = np.unique(np.sort(faces.reshape(-1, 3), axis=1),
                            axis=0).shape[0]
        chi = (box.n_vertices - box_struct.n_edges + n_faces - box.n_tets)
        assert chi == 1


class TestBoundaryFaces:
    def test_single_tet_all_faces_boundary(self):
        faces = extract_boundary_faces(np.array([[0, 1, 2, 3]]))
        assert faces.shape == (4, 3)

    def test_box_boundary_face_count(self, box_struct):
        # 6 sides x (4x4 cells x 2 triangles) = 192 for the 4^3 box.
        assert box_struct.n_bfaces == 192

    def test_outward_orientation(self, box, box_struct):
        # Face normal dotted with (centroid - domain centre) > 0 for a
        # convex domain.
        centre = box.vertices.mean(axis=0)
        centroids = box.vertices[box_struct.bfaces].mean(axis=1)
        outward = np.einsum("fd,fd->f", box_struct.bface_areas,
                            centroids - centre)
        assert np.all(outward > 0)

    def test_total_directed_area_zero(self, box_struct):
        # A closed surface has zero net directed area.
        np.testing.assert_allclose(box_struct.bface_areas.sum(axis=0),
                                   0.0, atol=1e-12)

    def test_box_surface_area(self, box_struct):
        area = np.linalg.norm(box_struct.bface_areas, axis=1).sum()
        assert area == pytest.approx(6.0)


class TestClosureIdentity:
    """The defining property: constant flux -> zero residual."""

    @pytest.mark.parametrize("fixture", ["box_struct", "bump_struct",
                                         "shell_struct"])
    def test_closure_machine_precision(self, fixture, request):
        struct = request.getfixturevalue(fixture)
        c = closure_residual(struct)
        scale = np.abs(struct.eta).max()
        assert np.abs(c).max() < 1e-12 * max(scale, 1.0)

    def test_closure_on_random_perturbed_box(self, rng):
        # Distorted interior vertices exercise arbitrary tet shapes.
        mesh = box_mesh(3, 3, 3)
        verts = mesh.vertices.copy()
        interior = np.all((verts > 0.01) & (verts < 0.99), axis=1)
        verts[interior] += rng.uniform(-0.08, 0.08, (interior.sum(), 3))
        mesh2 = TetMesh(verts, mesh.tets)
        struct = build_edge_structure(mesh2)
        assert np.abs(closure_residual(struct)).max() < 1e-13

    def test_dual_volumes_sum(self, bump, bump_struct):
        assert bump_struct.dual_volumes.sum() == pytest.approx(
            bump.total_volume)


class TestPatches:
    def test_bump_has_three_patch_kinds(self, bump_struct):
        tags = set(np.unique(bump_struct.bface_tags).tolist())
        assert tags == {PATCH_FARFIELD, PATCH_WALL, PATCH_SYMMETRY}

    def test_wall_vertices_on_floor(self, bump, bump_struct):
        wall = bump_struct.patch_vertices(PATCH_WALL)
        assert wall.size > 0
        # all wall vertices lie at or below the bump crest
        assert np.all(bump.vertices[wall, 2] <= 0.05 + 1e-9)

    def test_default_tagger_is_farfield(self, box_struct):
        assert set(np.unique(box_struct.bface_tags)) == {PATCH_FARFIELD}

    def test_bnormals_cover_all_boundary(self, bump_struct):
        total = bump_struct.total_bnormal()
        per_face = bump_struct.bface_areas.sum(axis=0)
        np.testing.assert_allclose(total.sum(axis=0), per_face, atol=1e-12)
