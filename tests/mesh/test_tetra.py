"""Tests for the core tet mesh container."""

import numpy as np
import pytest

from repro.mesh import TetMesh, box_mesh
from repro.mesh.tetra import orient_tets, tet_volumes

UNIT_TET_VERTS = np.array([[0.0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]])


class TestTetVolumes:
    def test_unit_tet_volume(self):
        vol = tet_volumes(UNIT_TET_VERTS, np.array([[0, 1, 2, 3]]))
        assert vol[0] == pytest.approx(1.0 / 6.0)

    def test_flipped_tet_negative(self):
        vol = tet_volumes(UNIT_TET_VERTS, np.array([[0, 1, 3, 2]]))
        assert vol[0] == pytest.approx(-1.0 / 6.0)

    def test_translation_invariance(self):
        shifted = UNIT_TET_VERTS + np.array([3.0, -2.0, 7.0])
        vol = tet_volumes(shifted, np.array([[0, 1, 2, 3]]))
        assert vol[0] == pytest.approx(1.0 / 6.0)

    def test_scaling_cubes(self):
        vol = tet_volumes(2.0 * UNIT_TET_VERTS, np.array([[0, 1, 2, 3]]))
        assert vol[0] == pytest.approx(8.0 / 6.0)


class TestOrientTets:
    def test_repairs_negative_orientation(self):
        tets = np.array([[0, 1, 3, 2]])
        fixed = orient_tets(UNIT_TET_VERTS, tets)
        assert tet_volumes(UNIT_TET_VERTS, fixed)[0] > 0

    def test_keeps_positive_orientation(self):
        tets = np.array([[0, 1, 2, 3]])
        fixed = orient_tets(UNIT_TET_VERTS, tets)
        np.testing.assert_array_equal(fixed, tets)

    def test_degenerate_raises(self):
        verts = np.array([[0.0, 0, 0], [1, 0, 0], [0, 1, 0], [0.5, 0.5, 0]])
        with pytest.raises(ValueError, match="degenerate"):
            orient_tets(verts, np.array([[0, 1, 2, 3]]))


class TestTetMesh:
    def test_construction_repairs_orientation(self):
        mesh = TetMesh(UNIT_TET_VERTS, np.array([[0, 1, 3, 2]]))
        assert mesh.volumes[0] > 0

    def test_rejects_bad_vertex_shape(self):
        with pytest.raises(ValueError, match="vertices"):
            TetMesh(np.zeros((4, 2)), np.array([[0, 1, 2, 3]]))

    def test_rejects_bad_tet_shape(self):
        with pytest.raises(ValueError, match="tets"):
            TetMesh(UNIT_TET_VERTS, np.array([[0, 1, 2]]))

    def test_rejects_out_of_range_index(self):
        with pytest.raises(ValueError, match="out of range"):
            TetMesh(UNIT_TET_VERTS, np.array([[0, 1, 2, 4]]))

    def test_counts(self, box):
        assert box.n_vertices == 125
        assert box.n_tets == 6 * 64

    def test_total_volume_of_unit_box(self, box):
        assert box.total_volume == pytest.approx(1.0)

    def test_dual_volumes_partition_domain(self, box):
        assert box.dual_volumes().sum() == pytest.approx(box.total_volume)

    def test_dual_volumes_positive(self, box):
        assert np.all(box.dual_volumes() > 0)

    def test_centroids_inside_bbox(self, box):
        c = box.tet_centroids()
        lo, hi = box.bounding_box()
        assert np.all(c >= lo) and np.all(c <= hi)

    def test_describe_mentions_counts(self, box):
        text = box.describe()
        assert "125" in text and "384" in text
