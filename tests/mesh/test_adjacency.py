"""Tests for vertex graphs and tet-tet face adjacency."""

import numpy as np
import pytest

from repro.mesh import tet_face_adjacency, vertex_graph, vertex_neighbors_csr


class TestVertexGraph:
    def test_symmetric(self, box_struct):
        g = vertex_graph(box_struct.edges, box_struct.n_vertices)
        assert (g != g.T).nnz == 0

    def test_degree_matches_edges(self, box_struct):
        g = vertex_graph(box_struct.edges, box_struct.n_vertices)
        assert g.nnz == 2 * box_struct.n_edges

    def test_no_self_loops(self, box_struct):
        g = vertex_graph(box_struct.edges, box_struct.n_vertices)
        assert g.diagonal().sum() == 0

    def test_csr_neighbors_sorted(self, box_struct):
        indptr, indices = vertex_neighbors_csr(box_struct.edges,
                                               box_struct.n_vertices)
        for v in range(0, box_struct.n_vertices, 17):
            nb = indices[indptr[v]:indptr[v + 1]]
            assert np.all(np.diff(nb) > 0)


class TestTetFaceAdjacency:
    def test_single_tet_all_boundary(self):
        adj = tet_face_adjacency(np.array([[0, 1, 2, 3]]))
        assert np.all(adj == -1)

    def test_two_glued_tets(self):
        tets = np.array([[0, 1, 2, 3], [4, 1, 3, 2]])
        adj = tet_face_adjacency(tets)
        # They share the face (1,2,3): exactly one adjacency slot each.
        assert np.count_nonzero(adj[0] == 1) == 1
        assert np.count_nonzero(adj[1] == 0) == 1

    def test_adjacency_symmetric(self, box):
        adj = tet_face_adjacency(box.tets)
        nt = box.n_tets
        for t in range(0, nt, 37):
            for nb in adj[t]:
                if nb >= 0:
                    assert t in adj[nb]

    def test_boundary_face_count_consistent(self, box, box_struct):
        adj = tet_face_adjacency(box.tets)
        assert np.count_nonzero(adj < 0) == box_struct.n_bfaces

    def test_interior_count(self, box):
        adj = tet_face_adjacency(box.tets)
        n_interior_slots = np.count_nonzero(adj >= 0)
        assert n_interior_slots % 2 == 0

    def test_neighbor_shares_face_vertices(self, box):
        adj = tet_face_adjacency(box.tets)
        local_faces = np.array([(1, 2, 3), (0, 3, 2), (0, 1, 3), (0, 2, 1)])
        for t in range(0, box.n_tets, 53):
            for k, nb in enumerate(adj[t]):
                if nb >= 0:
                    face = set(box.tets[t, local_faces[k]].tolist())
                    assert face.issubset(set(box.tets[nb].tolist()))
