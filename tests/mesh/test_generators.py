"""Tests for the three mesh generators."""

import numpy as np
import pytest

from repro.mesh import (PATCH_FARFIELD, PATCH_WALL, box_mesh, bump_channel,
                        build_edge_structure, closure_residual,
                        ellipsoid_shell)
from repro.mesh.generators.bump import bump_profile
from repro.mesh.generators.shell import cube_sphere_surface, hexes_to_tets24


class TestBoxMesh:
    def test_cell_count(self):
        mesh = box_mesh(2, 3, 4)
        assert mesh.n_tets == 6 * 2 * 3 * 4
        assert mesh.n_vertices == 3 * 4 * 5

    def test_volume_matches_bounds(self):
        mesh = box_mesh(3, 3, 3, bounds=((0, 2), (0, 3), (0, 4)))
        assert mesh.total_volume == pytest.approx(24.0)

    def test_all_positive_volumes(self):
        mesh = box_mesh(5, 2, 3)
        assert np.all(mesh.volumes > 0)

    def test_conforming_across_cells(self):
        # A conforming mesh of a box has exactly the boundary faces of the
        # surface; any internal crack would create extra boundary faces.
        mesh = box_mesh(3, 3, 3)
        struct = build_edge_structure(mesh)
        assert struct.n_bfaces == 6 * 9 * 2

    def test_custom_tagger_applied(self):
        tagger = lambda c, n: np.full(len(c), PATCH_WALL)
        mesh = box_mesh(2, 2, 2, boundary_tagger=tagger)
        struct = build_edge_structure(mesh)
        assert set(np.unique(struct.bface_tags)) == {PATCH_WALL}


class TestBumpProfile:
    def test_zero_outside_interval(self):
        x = np.array([0.0, 0.5, 2.5, 3.0])
        np.testing.assert_allclose(bump_profile(x, 1.0, 2.0, 0.1), 0.0,
                                   atol=1e-30)

    def test_peak_at_midpoint(self):
        assert bump_profile(np.array([1.5]), 1.0, 2.0, 0.1)[0] == \
            pytest.approx(0.1)

    def test_smooth_at_endpoints(self):
        eps = 1e-6
        x = np.array([1.0 + eps, 2.0 - eps])
        vals = bump_profile(x, 1.0, 2.0, 0.1)
        assert np.all(vals < 1e-9)


class TestBumpChannel:
    def test_closure(self):
        struct = build_edge_structure(bump_channel(8, 2, 4))
        assert np.abs(closure_residual(struct)).max() < 1e-13

    def test_bump_reduces_volume(self):
        flat = bump_channel(12, 2, 4, bump_height=0.0)
        bumped = bump_channel(12, 2, 4, bump_height=0.05)
        assert bumped.total_volume < flat.total_volume

    def test_floor_follows_profile(self):
        mesh = bump_channel(24, 2, 8, bump_height=0.04)
        floor = mesh.vertices[:, 2].min()
        assert floor == pytest.approx(0.0, abs=1e-12)
        crest = mesh.vertices[np.isclose(mesh.vertices[:, 0], 1.5), 2].min()
        assert crest == pytest.approx(0.04, abs=1e-9)

    def test_rejects_choking_bump(self):
        with pytest.raises(ValueError, match="fill"):
            bump_channel(8, 2, 4, bump_height=1.0)

    def test_rejects_bump_outside_channel(self):
        with pytest.raises(ValueError, match="inside"):
            bump_channel(8, 2, 4, bump_x0=2.0, bump_x1=4.0)

    def test_wall_faces_exist(self):
        struct = build_edge_structure(bump_channel(8, 2, 4))
        assert np.count_nonzero(struct.bface_tags == PATCH_WALL) > 0


class TestCubeSphere:
    def test_points_on_unit_sphere(self):
        pts, _ = cube_sphere_surface(4)
        np.testing.assert_allclose(np.linalg.norm(pts, axis=1), 1.0,
                                   atol=1e-12)

    def test_counts(self):
        n = 4
        pts, quads = cube_sphere_surface(n)
        # Surface lattice of an (n+1)^3 cube: 6(n+1)^2 - 12(n+1) + 8.
        assert pts.shape[0] == 6 * (n + 1) ** 2 - 12 * (n + 1) + 8
        assert quads.shape[0] == 6 * n * n

    def test_quads_watertight(self):
        # Every quad edge is shared by exactly two quads on a closed surface.
        _, quads = cube_sphere_surface(3)
        edges = np.concatenate([quads[:, [0, 1]], quads[:, [1, 2]],
                                quads[:, [2, 3]], quads[:, [3, 0]]])
        key = np.sort(edges, axis=1)
        _, counts = np.unique(key, axis=0, return_counts=True)
        assert np.all(counts == 2)

    def test_rejects_zero_resolution(self):
        with pytest.raises(ValueError):
            cube_sphere_surface(0)


class TestHexToTets:
    def test_unit_cube_splits_into_24(self):
        verts = np.array([[x, y, z] for x in (0, 1) for y in (0, 1)
                          for z in (0, 1)], dtype=float)
        # Corner ordering matching _HEX_FACES convention.
        hexes = np.array([[0, 4, 6, 2, 1, 5, 7, 3]])
        faces = np.array([(0, 1, 2, 3), (4, 5, 6, 7), (0, 1, 5, 4),
                          (1, 2, 6, 5), (2, 3, 7, 6), (3, 0, 4, 7)])
        all_verts, tets = hexes_to_tets24(verts, hexes, faces)
        assert tets.shape[0] == 24
        assert all_verts.shape[0] == 8 + 6 + 1
        from repro.mesh.tetra import tet_volumes, orient_tets
        vols = tet_volumes(all_verts, orient_tets(all_verts, tets))
        assert vols.sum() == pytest.approx(1.0)


class TestEllipsoidShell:
    def test_closure(self, shell_struct):
        assert np.abs(closure_residual(shell_struct)).max() < 1e-12

    def test_two_boundary_patches(self, shell_struct):
        tags = set(np.unique(shell_struct.bface_tags))
        assert tags == {PATCH_FARFIELD, PATCH_WALL}

    def test_wall_on_ellipsoid(self, shell, shell_struct):
        # Wall faces are built from ellipsoid surface points plus quad-face
        # centroids, which sit slightly inside the curved surface (facet
        # sag) — so the level function is <= 1 and close to 1.
        wall_verts = shell_struct.patch_vertices(PATCH_WALL)
        a, b, c = 1.0, 0.4, 0.25
        level = ((shell.vertices[wall_verts, 0] / a) ** 2
                 + (shell.vertices[wall_verts, 1] / b) ** 2
                 + (shell.vertices[wall_verts, 2] / c) ** 2)
        assert np.all(level <= 1.0 + 1e-9)
        assert np.all(level >= 0.6)
        assert np.any(np.isclose(level, 1.0, atol=1e-9))

    def test_farfield_on_sphere(self, shell, shell_struct):
        far = shell_struct.patch_vertices(PATCH_FARFIELD)
        r = np.linalg.norm(shell.vertices[far], axis=1)
        assert np.all(r <= 8.0 + 1e-9)
        assert np.all(r >= 0.8 * 8.0)
        assert np.any(np.isclose(r, 8.0, atol=1e-9))

    def test_volume_between_bodies(self, shell):
        sphere_vol = 4.0 / 3.0 * np.pi * 8.0 ** 3
        ellipsoid_vol = 4.0 / 3.0 * np.pi * 1.0 * 0.4 * 0.25
        # Faceted approximation is below the smooth volume.
        assert shell.total_volume < sphere_vol - ellipsoid_vol
        assert shell.total_volume > 0.85 * (sphere_vol - ellipsoid_vol)

    def test_rejects_far_radius_inside_body(self):
        with pytest.raises(ValueError, match="exceed"):
            ellipsoid_shell(3, 3, semi_axes=(2.0, 2.0, 2.0), far_radius=1.0)

    def test_radial_clustering(self):
        mesh = ellipsoid_shell(3, 5, stretch=1.5)
        # First layer thickness (near body) smaller than last (near farfield):
        r = np.unique(np.round(np.linalg.norm(
            mesh.vertices[np.isclose(mesh.vertices[:, 1], 0.0)
                          & np.isclose(mesh.vertices[:, 2], 0.0)], axis=1), 9))
        diffs = np.diff(r[r > 0.9])
        assert diffs[0] < diffs[-1]
