"""Tests for mesh validation."""

import numpy as np
import pytest

from repro.mesh import TetMesh, box_mesh, validate_mesh
from repro.mesh.validate import ValidationReport


class TestValidateGoodMeshes:
    @pytest.mark.parametrize("fixture", ["box", "bump", "shell"])
    def test_generators_pass(self, fixture, request):
        mesh = request.getfixturevalue(fixture)
        report = validate_mesh(mesh)
        assert bool(report), report.report()

    def test_report_lists_all_checks(self, box):
        report = validate_mesh(box)
        assert {"positive volumes", "conforming faces", "dual closure",
                "watertight boundary", "no duplicate vertices",
                "no isolated vertices"} <= set(report.checks)


class TestValidateBadMeshes:
    def test_duplicate_vertices_detected(self):
        verts = np.array([[0.0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1],
                          [0.0, 0, 0]])           # duplicate of vertex 0
        mesh = TetMesh(verts, np.array([[0, 1, 2, 3]]))
        report = validate_mesh(mesh)
        assert "no duplicate vertices" in report.failures
        assert "no isolated vertices" in report.failures

    def test_nonconforming_detected(self):
        # Three tets sharing ONE face: multiplicity 3.
        verts = np.array([[0.0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1],
                          [0, 0, -1], [1, 1, 1]])
        tets = np.array([[0, 1, 2, 3], [0, 2, 1, 4], [0, 1, 2, 5]])
        mesh = TetMesh(verts, tets)
        report = validate_mesh(mesh)
        assert "conforming faces" in report.failures

    def test_isolated_vertex_detected(self):
        verts = np.array([[0.0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1],
                          [5.0, 5, 5]])
        mesh = TetMesh(verts, np.array([[0, 1, 2, 3]]))
        report = validate_mesh(mesh)
        assert "no isolated vertices" in report.failures
        assert not report

    def test_report_renders_failures(self):
        verts = np.array([[0.0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1],
                          [5.0, 5, 5]])
        mesh = TetMesh(verts, np.array([[0, 1, 2, 3]]))
        text = validate_mesh(mesh).report()
        assert "FAIL" in text

    def test_empty_report_truthy(self):
        assert bool(ValidationReport())
