"""Tests for node/edge reordering and reuse-distance measurement."""

import numpy as np
import pytest

from repro.distsolver import (apply_vertex_permutation, bfs_renumber,
                              random_shuffle_edges, reuse_distances,
                              sort_edges_by_vertex)
from repro.mesh import TetMesh, build_edge_structure


class TestBfsRenumber:
    def test_is_permutation(self, bump_struct):
        perm = bfs_renumber(bump_struct.edges, bump_struct.n_vertices)
        assert np.sort(perm).tolist() == list(range(bump_struct.n_vertices))

    def test_improves_bandwidth(self, bump_struct):
        # Graph bandwidth (max |new_i - new_j| over edges) should shrink
        # versus the lattice numbering for the elongated channel.
        perm = bfs_renumber(bump_struct.edges, bump_struct.n_vertices)
        e = bump_struct.edges
        bw_orig = np.abs(e[:, 0] - e[:, 1]).max()
        bw_new = np.abs(perm[e[:, 0]] - perm[e[:, 1]]).max()
        assert bw_new <= bw_orig * 1.5

    def test_handles_disconnected_graph(self):
        edges = np.array([[0, 1], [2, 3]])
        perm = bfs_renumber(edges, 5)      # vertex 4 isolated
        assert np.sort(perm).tolist() == list(range(5))

    def test_apply_permutation_preserves_geometry(self, bump, bump_struct):
        perm = bfs_renumber(bump_struct.edges, bump.n_vertices)
        verts, tets = apply_vertex_permutation(perm, bump.vertices, bump.tets)
        mesh2 = TetMesh(verts, tets)
        assert mesh2.total_volume == pytest.approx(bump.total_volume)
        struct2 = build_edge_structure(mesh2)
        assert struct2.n_edges == bump_struct.n_edges


class TestEdgeSort:
    def test_sorted_by_first_endpoint(self, bump_struct):
        order = sort_edges_by_vertex(bump_struct.edges)
        sorted_edges = bump_struct.edges[order]
        assert np.all(np.diff(sorted_edges[:, 0]) >= 0)

    def test_is_permutation(self, bump_struct):
        order = sort_edges_by_vertex(bump_struct.edges)
        assert np.sort(order).tolist() == list(range(bump_struct.n_edges))

    def test_shuffle_is_permutation(self):
        order = random_shuffle_edges(100, seed=1)
        assert np.sort(order).tolist() == list(range(100))


class TestReuseDistances:
    def test_first_access_infinite(self):
        d = reuse_distances(np.array([5, 6, 7]))
        assert np.all(np.isinf(d))

    def test_repeat_access_distance(self):
        d = reuse_distances(np.array([1, 2, 1, 1]))
        np.testing.assert_array_equal(d[2:], [2.0, 1.0])

    def test_reordering_shortens_reuse(self, bump_struct):
        # The whole point of Section 4.2: vertex-sorted edge order gives
        # far shorter reuse distances than a random order.
        edges = bump_struct.edges
        sorted_stream = edges[sort_edges_by_vertex(edges)].ravel()
        shuffled_stream = edges[random_shuffle_edges(len(edges))].ravel()
        d_sorted = reuse_distances(sorted_stream)
        d_shuffled = reuse_distances(shuffled_stream)
        med_sorted = np.median(d_sorted[np.isfinite(d_sorted)])
        med_shuffled = np.median(d_shuffled[np.isfinite(d_shuffled)])
        assert med_sorted < 0.5 * med_shuffled
