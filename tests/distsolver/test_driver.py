"""Tests for the distributed SPMD solver: equivalence with sequential."""

import numpy as np
import pytest

from repro.distsolver import DistributedEulerSolver, partition_solver_data
from repro.partition import (greedy_bfs_partition,
                             recursive_coordinate_bisection,
                             recursive_spectral_bisection)
from repro.solver import EulerSolver, SolverConfig, build_boundary_data


@pytest.fixture(scope="module")
def assignment(bump, bump_struct):
    return recursive_spectral_bisection(bump_struct.edges,
                                        bump.n_vertices, 4)


@pytest.fixture(scope="module")
def dist(bump_struct, winf, assignment):
    return DistributedEulerSolver(bump_struct, winf, assignment,
                                  SolverConfig())


class TestPartitionedMesh:
    def test_edges_partitioned_exactly_once(self, bump_struct, assignment):
        bdata = build_boundary_data(bump_struct)
        dmesh = partition_solver_data(bump_struct, bdata, assignment)
        total_edges = sum(rm.n_edges for rm in dmesh.ranks)
        assert total_edges == bump_struct.n_edges

    def test_dual_volumes_partitioned(self, bump_struct, assignment):
        bdata = build_boundary_data(bump_struct)
        dmesh = partition_solver_data(bump_struct, bdata, assignment)
        total = sum(rm.dual_volumes.sum() for rm in dmesh.ranks)
        assert total == pytest.approx(bump_struct.dual_volumes.sum())

    def test_local_edges_in_range(self, bump_struct, assignment):
        bdata = build_boundary_data(bump_struct)
        dmesh = partition_solver_data(bump_struct, bdata, assignment)
        for rm in dmesh.ranks:
            assert rm.edges.min() >= 0
            assert rm.edges.max() < rm.n_local

    def test_boundary_vertices_covered(self, bump_struct, assignment):
        bdata = build_boundary_data(bump_struct)
        dmesh = partition_solver_data(bump_struct, bdata, assignment)
        n_wall = sum(rm.wall_vertices.size for rm in dmesh.ranks)
        assert n_wall == bdata.wall_vertices.size

    def test_degree_complete(self, bump_struct, assignment):
        bdata = build_boundary_data(bump_struct)
        dmesh = partition_solver_data(bump_struct, bdata, assignment)
        degree_global = np.zeros(bump_struct.n_vertices, dtype=int)
        np.add.at(degree_global, bump_struct.edges.ravel(), 1)
        for rm in dmesh.ranks:
            owned = dmesh.table.owned_globals[rm.rank]
            np.testing.assert_array_equal(rm.degree, degree_global[owned])


class TestDistributedEquivalence:
    """Distributed must equal sequential to summation-order tolerance."""

    def test_residual_matches(self, bump_struct, winf, dist):
        seq = EulerSolver(bump_struct, winf, SolverConfig())
        w_global = seq.freestream_solution()
        w_global *= np.linspace(0.95, 1.05, bump_struct.n_vertices)[:, None]
        r_seq = seq.residual(w_global)
        w_list = dist.distribute(w_global)
        r_dist = dist.residual(w_list)
        r_collected = dist.dmesh.table.gather_global_array(r_dist)
        np.testing.assert_allclose(r_collected, r_seq, atol=1e-11)

    def test_step_matches(self, bump_struct, winf, dist):
        seq = EulerSolver(bump_struct, winf, SolverConfig())
        w = seq.freestream_solution()
        w_list = dist.freestream_solution()
        for _ in range(3):
            w = seq.step(w)
            w_list = dist.step(w_list)
        np.testing.assert_allclose(dist.collect(w_list), w,
                                   rtol=1e-12, atol=1e-13)

    def test_residual_norm_matches(self, bump_struct, winf, dist):
        seq = EulerSolver(bump_struct, winf, SolverConfig())
        w = seq.freestream_solution()
        w_list = dist.distribute(w)
        assert dist.density_residual_norm(w_list) == pytest.approx(
            seq.density_residual_norm(w), rel=1e-10)

    @pytest.mark.parametrize("partitioner", ["rcb", "bfs"])
    def test_equivalence_all_partitioners(self, bump, bump_struct, winf,
                                          partitioner):
        if partitioner == "rcb":
            asg = recursive_coordinate_bisection(bump.vertices, 5)
        else:
            asg = greedy_bfs_partition(bump_struct.edges, bump.n_vertices, 5)
        seq = EulerSolver(bump_struct, winf, SolverConfig())
        dist = DistributedEulerSolver(bump_struct, winf, asg, SolverConfig())
        w = seq.step(seq.freestream_solution())
        w_list = dist.step(dist.freestream_solution())
        np.testing.assert_allclose(dist.collect(w_list), w,
                                   rtol=1e-12, atol=1e-13)

    def test_single_rank_degenerate(self, bump_struct, winf):
        asg = np.zeros(bump_struct.n_vertices, dtype=np.int32)
        dist = DistributedEulerSolver(bump_struct, winf, asg, SolverConfig())
        seq = EulerSolver(bump_struct, winf, SolverConfig())
        w = seq.step(seq.freestream_solution())
        w_list = dist.step(dist.freestream_solution())
        np.testing.assert_allclose(dist.collect(w_list), w, atol=1e-13)
        # No inter-rank traffic on one rank.
        assert dist.machine.log.total_msgs == 0

    def test_forcing_matches(self, bump_struct, winf, dist, rng):
        seq = EulerSolver(bump_struct, winf, SolverConfig())
        forcing = 1e-5 * rng.standard_normal((bump_struct.n_vertices, 5))
        w = seq.step(seq.freestream_solution(), forcing=forcing)
        forcing_list = dist.dmesh.table.scatter_global_array(forcing)
        w_list = dist.step(dist.freestream_solution(), forcing=forcing_list)
        np.testing.assert_allclose(dist.collect(w_list), w,
                                   rtol=1e-12, atol=1e-13)


class TestTrafficAccounting:
    def test_phases_logged(self, dist):
        # Default (overlap) mode aggregates the stage-0 sigma/dt exchange
        # into "sigma-diss-partials" and the q+d scatters into
        # "qd-scatter", so the blocking phases d-scatter/dt-scatter never
        # appear.
        dist.step(dist.freestream_solution())
        names = set(dist.machine.log.phases)
        assert {"w-gather", "q-scatter", "sigma-diss-partials",
                "diss-partials", "diss-gather", "qd-scatter"} <= names
        assert "d-scatter" not in names
        assert "dt-scatter" not in names

    def test_phases_logged_blocking(self, bump_struct, winf, assignment):
        dist = DistributedEulerSolver(bump_struct, winf, assignment,
                                      SolverConfig(dist_mode="blocking"))
        dist.step(dist.freestream_solution())
        names = set(dist.machine.log.phases)
        assert {"w-gather", "q-scatter", "diss-partials", "diss-gather",
                "d-scatter", "dt-scatter"} <= names

    def test_smoothing_traffic_present(self, dist):
        dist.step(dist.freestream_solution())
        assert "smooth-gather" in dist.machine.log.phases

    def test_flop_accounting_covers_all_ranks(self, dist):
        dist.rank_flops.clear()
        dist.step(dist.freestream_solution())
        conv = dist.rank_flops["convective"]
        assert conv.shape == (dist.n_ranks,)
        assert np.all(conv > 0)

    def test_run_returns_history(self, dist):
        _, hist = dist.run(n_cycles=2)
        assert len(hist) == 3
        assert all(np.isfinite(hist))

    def test_rejects_machine_size_mismatch(self, bump_struct, winf,
                                           assignment):
        from repro.parti import SimMachine
        with pytest.raises(ValueError, match="machine"):
            DistributedEulerSolver(bump_struct, winf, assignment,
                                   machine=SimMachine(2))
