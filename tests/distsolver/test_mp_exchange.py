"""Tests for the true-multiprocessing PARTI execution path."""

import numpy as np
import pytest

from repro.distsolver.mp_exchange import mp_convective_residual
from repro.distsolver.partitioned_mesh import partition_solver_data
from repro.partition import recursive_spectral_bisection
from repro.scatter import EdgeScatter
from repro.solver import build_boundary_data
from repro.solver.flux import convective_operator


@pytest.fixture(scope="module")
def dmesh4(bump_struct):
    asg = recursive_spectral_bisection(bump_struct.edges,
                                       bump_struct.n_vertices, 4)
    return partition_solver_data(bump_struct,
                                 build_boundary_data(bump_struct), asg)


class TestMpConvective:
    def test_matches_sequential(self, bump_struct, dmesh4, winf, rng):
        w = np.tile(winf, (bump_struct.n_vertices, 1))
        w *= rng.uniform(0.95, 1.05, (bump_struct.n_vertices, 1))
        q_mp = mp_convective_residual(dmesh4, w)
        q_seq = convective_operator(
            w, bump_struct.edges, bump_struct.eta,
            EdgeScatter(bump_struct.edges, bump_struct.n_vertices))
        np.testing.assert_allclose(q_mp, q_seq, rtol=1e-12, atol=1e-14)

    def test_freestream_interior_conservation(self, bump_struct, dmesh4,
                                              winf):
        # Interior edge fluxes telescope regardless of the execution path.
        w = np.tile(winf, (bump_struct.n_vertices, 1))
        q_mp = mp_convective_residual(dmesh4, w)
        np.testing.assert_allclose(q_mp.sum(axis=0), 0.0, atol=1e-10)

    def test_two_ranks(self, bump_struct, winf, rng):
        asg = recursive_spectral_bisection(bump_struct.edges,
                                           bump_struct.n_vertices, 2)
        dmesh = partition_solver_data(bump_struct,
                                      build_boundary_data(bump_struct), asg)
        w = np.tile(winf, (bump_struct.n_vertices, 1))
        w *= rng.uniform(0.9, 1.1, (bump_struct.n_vertices, 1))
        q_mp = mp_convective_residual(dmesh, w)
        q_seq = convective_operator(
            w, bump_struct.edges, bump_struct.eta,
            EdgeScatter(bump_struct.edges, bump_struct.n_vertices))
        np.testing.assert_allclose(q_mp, q_seq, rtol=1e-12, atol=1e-14)


class TestMpFullSolver:
    """The complete five-stage step loop over real OS processes."""

    def test_matches_sequential_over_cycles(self, bump_struct, winf):
        from repro.distsolver import run_distributed_mp
        from repro.distsolver.partitioned_mesh import partition_solver_data
        from repro.solver import EulerSolver, SolverConfig, build_boundary_data
        cfg = SolverConfig()
        asg = recursive_spectral_bisection(bump_struct.edges,
                                           bump_struct.n_vertices, 4)
        dmesh = partition_solver_data(bump_struct,
                                      build_boundary_data(bump_struct), asg)
        seq = EulerSolver(bump_struct, winf, cfg)
        w0 = seq.freestream_solution()
        w_mp = run_distributed_mp(dmesh, w0, winf, cfg, n_cycles=2)
        w_seq = w0
        for _ in range(2):
            w_seq = seq.step(w_seq)
        np.testing.assert_allclose(w_mp, w_seq, rtol=1e-12, atol=1e-13)

    def test_matches_simulated_driver(self, bump_struct, winf):
        from repro.distsolver import DistributedEulerSolver, run_distributed_mp
        from repro.distsolver.partitioned_mesh import partition_solver_data
        from repro.solver import SolverConfig, build_boundary_data
        cfg = SolverConfig()
        asg = recursive_spectral_bisection(bump_struct.edges,
                                           bump_struct.n_vertices, 3)
        dmesh = partition_solver_data(bump_struct,
                                      build_boundary_data(bump_struct), asg)
        sim = DistributedEulerSolver(bump_struct, winf, asg, cfg)
        w0 = sim.freestream_solution()
        w_sim, _ = sim.run(n_cycles=2)
        w_global0 = sim.collect(w0)
        w_mp = run_distributed_mp(dmesh, w_global0, winf, cfg, n_cycles=2)
        np.testing.assert_allclose(w_mp, sim.collect(w_sim),
                                   rtol=1e-12, atol=1e-13)

    def test_without_smoothing_config(self, bump_struct, winf):
        from repro.distsolver import run_distributed_mp
        from repro.distsolver.partitioned_mesh import partition_solver_data
        from repro.solver import EulerSolver, SolverConfig, build_boundary_data
        cfg = SolverConfig().without_smoothing()
        asg = recursive_spectral_bisection(bump_struct.edges,
                                           bump_struct.n_vertices, 2)
        dmesh = partition_solver_data(bump_struct,
                                      build_boundary_data(bump_struct), asg)
        seq = EulerSolver(bump_struct, winf, cfg)
        w0 = seq.freestream_solution()
        w_mp = run_distributed_mp(dmesh, w0, winf, cfg, n_cycles=1)
        np.testing.assert_allclose(w_mp, seq.step(w0),
                                   rtol=1e-12, atol=1e-13)
