"""Tests for the latency-hiding overlap executor (PR 4).

Three layers of guarantees:

* **Bit identity of the split** — an interior/boundary edge-list split
  executed as overwrite-then-accumulate through two CSR operators equals
  one CSR operator over the edges ordered ``[interior; boundary]``
  *bit-for-bit* (SciPy's CSR mat-vec keeps a per-row running sum, so the
  accumulating second apply continues exactly where the first stopped).
  Hypothesis drives this over random edge lists and random ownership
  cuts.

* **Mode equivalence** — the overlap step matches the blocking step and
  the sequential solver to summation-order tolerance, while sending
  strictly fewer, larger messages per cycle (the aggregated
  ``sigma-diss-partials`` / ``qd-scatter`` phases).

* **Delayed boundary data is harmless** — a ``delay`` fault on the
  ghost-state gather of the real-process backend (the message the
  boundary kernels wait on while interior work proceeds) changes
  nothing: results stay bit-identical to the clean run.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.distsolver import DistributedEulerSolver, run_distributed_mp
from repro.distsolver import rank_kernels
from repro.distsolver.partitioned_mesh import partition_solver_data
from repro.kernels import make_executor
from repro.kernels.compiled import numba_available
from repro.kernels.executors import (AUTO_COLOR_EDGE_THRESHOLD,
                                     SerialExecutor, resolve_auto_kind)
from repro.partition import recursive_spectral_bisection
from repro.resilience import FaultInjector, FaultSpec
from repro.scatter import EdgeScatter
from repro.solver import EulerSolver, SolverConfig, build_boundary_data

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])


def random_edges(seed: int, n_vertices: int, n_edges: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    n_edges = min(n_edges, n_vertices * (n_vertices - 1) // 2)
    pairs = set()
    while len(pairs) < n_edges:
        i, j = rng.integers(0, n_vertices, 2)
        if i != j:
            pairs.add((min(i, j), max(i, j)))
    return np.array(sorted(pairs), dtype=np.int64)


class TestSplitBitIdentity:
    """interior(overwrite) + boundary(accumulate) == one CSR, bitwise."""

    @given(seed=st.integers(0, 10_000), nv=st.integers(4, 40))
    @settings(max_examples=60, **COMMON)
    def test_signed_unsigned_neighbor(self, seed, nv):
        rng = np.random.default_rng(seed)
        edges = random_edges(seed, nv, int(rng.integers(1, max(2, 2 * nv))))
        ne = edges.shape[0]
        # Random ownership cut: vertices [0, n_owned) are "owned", the
        # rest are "ghosts" — exactly how RankMesh classifies edges.
        n_owned = int(rng.integers(1, nv + 1))
        interior = np.all(edges < n_owned, axis=1)
        e_int, e_bnd = edges[interior], edges[~interior]
        sc_int = EdgeScatter(e_int, nv)
        sc_bnd = EdgeScatter(e_bnd, nv)
        # The reference operator runs over the SAME edge ordering the
        # split produces: [interior; boundary].
        sc_ref = EdgeScatter(np.concatenate([e_int, e_bnd]), nv)

        vals = rng.standard_normal((ne, 5))
        v_int, v_bnd = vals[interior], vals[~interior]
        ref = sc_ref.signed(np.concatenate([v_int, v_bnd]))
        got = sc_int.signed(v_int)
        sc_bnd.signed(v_bnd, out=got, accumulate=True)
        assert np.array_equal(got, ref)

        scal = rng.standard_normal(ne)
        s_int, s_bnd = scal[interior], scal[~interior]
        ref = sc_ref.unsigned(np.concatenate([s_int, s_bnd]))
        got = sc_int.unsigned(s_int)
        sc_bnd.unsigned(s_bnd, out=got, accumulate=True)
        assert np.array_equal(got, ref)

        vv = rng.standard_normal((nv, 5))
        ref = sc_ref.neighbor_sum(vv)
        got = sc_int.neighbor_sum(vv)
        sc_bnd.neighbor_sum(vv, out=got, accumulate=True)
        assert np.array_equal(got, ref)


@pytest.fixture(scope="module")
def dmesh4(bump_struct):
    asg = recursive_spectral_bisection(bump_struct.edges,
                                       bump_struct.n_vertices, 4)
    return partition_solver_data(bump_struct,
                                 build_boundary_data(bump_struct), asg)


class TestRankOpsMatchBlockingKernels:
    """The CSR RankOps agree with the np.add.at rank kernels."""

    def test_convective_and_sigma(self, dmesh4, winf, rng):
        for rm in dmesh4.ranks:
            w = np.tile(winf, (rm.n_local, 1))
            w *= rng.uniform(0.95, 1.05, (rm.n_local, 1))
            ops = rank_kernels.rank_ops(rm)
            ops.stage_begin(w, need_diss=True)
            ops.stage_complete(w, need_diss=True)

            q = np.zeros((rm.n_local, 5))
            ops.convective("interior", q, accumulate=False)
            ops.convective("boundary", q, accumulate=True)
            q_ref = rank_kernels.convective_local(rm, w)
            np.testing.assert_allclose(q, q_ref, rtol=1e-12, atol=1e-14)

            sig = np.zeros(rm.n_local)
            ops.sigma("interior", sig, accumulate=False)
            ops.sigma("boundary", sig, accumulate=True)
            sig_ref = rank_kernels.spectral_sigma(rm, w)[:, 0]
            np.testing.assert_allclose(sig, sig_ref, rtol=1e-12, atol=1e-14)

    def test_interior_edges_never_touch_ghosts(self, dmesh4):
        for rm in dmesh4.ranks:
            assert np.all(rm.edges[rm.interior_edges] < rm.n_owned)
            if rm.boundary_edges.size:
                assert np.all(
                    rm.edges[rm.boundary_edges].max(axis=1) >= rm.n_owned)
            # The split is a partition of the edge list.
            both = np.sort(np.concatenate([rm.interior_edges,
                                           rm.boundary_edges]))
            np.testing.assert_array_equal(both, np.arange(rm.n_edges))


class TestModeEquivalence:
    @pytest.fixture(scope="class")
    def assignment(self, bump_struct):
        return recursive_spectral_bisection(bump_struct.edges,
                                            bump_struct.n_vertices, 4)

    def test_overlap_matches_blocking_and_sequential(self, bump_struct,
                                                     winf, assignment):
        seq = EulerSolver(bump_struct, winf, SolverConfig())
        over = DistributedEulerSolver(bump_struct, winf, assignment,
                                      SolverConfig(dist_mode="overlap"))
        block = DistributedEulerSolver(bump_struct, winf, assignment,
                                       SolverConfig(dist_mode="blocking"))
        w = seq.freestream_solution()
        w_o = over.freestream_solution()
        w_b = block.freestream_solution()
        for _ in range(3):
            w = seq.step(w)
            w_o = over.step(w_o)
            w_b = block.step(w_b)
        np.testing.assert_allclose(over.collect(w_o), w,
                                   rtol=1e-12, atol=1e-13)
        np.testing.assert_allclose(over.collect(w_o), block.collect(w_b),
                                   rtol=1e-12, atol=1e-13)

    def test_overlap_sends_fewer_messages(self, bump_struct, winf,
                                          assignment):
        counts = {}
        for mode in ("overlap", "blocking"):
            dist = DistributedEulerSolver(bump_struct, winf, assignment,
                                          SolverConfig(dist_mode=mode))
            dist.step(dist.freestream_solution())
            counts[mode] = dist.machine.log.total_msgs
        # Aggregation folds dt-scatter into sigma-diss-partials and the
        # q+d scatters into qd-scatter: 34 exchanges/cycle vs 37.
        assert counts["overlap"] < counts["blocking"]

    def test_dist_mode_validated(self):
        with pytest.raises(ValueError, match="dist_mode"):
            SolverConfig(dist_mode="eager")


class TestDelayedBoundaryMessage:
    """Late ghost data must only stall, never corrupt, the overlap path."""

    @pytest.fixture(scope="class")
    def dmesh3(self, bump_struct):
        asg = recursive_spectral_bisection(bump_struct.edges,
                                           bump_struct.n_vertices, 3)
        return partition_solver_data(bump_struct,
                                     build_boundary_data(bump_struct), asg)

    def test_delayed_ghost_gather_bit_identical(self, dmesh3, bump_struct,
                                                winf):
        cfg = SolverConfig(dist_mode="overlap")
        w0 = np.tile(winf, (bump_struct.n_vertices, 1))
        w_clean = run_distributed_mp(dmesh3, w0, winf, cfg, n_cycles=1)
        # Op 0 is the stage-0 w-gather: the ghost state the boundary
        # kernels complete on.  Delaying it widens the overlap window to
        # its maximum — interior work finishes long before the ghosts
        # arrive — and must change nothing.
        injector = FaultInjector([FaultSpec(kind="delay", rank=1, op=0,
                                            delay_s=0.2, count=2)])
        w_delayed = run_distributed_mp(dmesh3, w0, winf, cfg, n_cycles=1,
                                       injector=injector)
        assert np.array_equal(w_delayed, w_clean)


class TestAutoExecutor:
    """``auto`` resolution is environment-dependent by design: with the
    ``compiled`` extra installed the compiled family takes over past its
    measured crossover, without it the NumPy heuristics stand alone —
    both behaviours are pinned here."""

    def test_small_mesh_resolves_to_fused(self, bump_struct):
        kind = resolve_auto_kind(bump_struct.edges, bump_struct.n_vertices,
                                 n_threads=8)
        if numba_available():
            # Above the compiled crossover the jitted family wins; below
            # it the dependency-free pipeline stays in charge.
            assert kind in ("fused", "compiled", "compiled-parallel")
        else:
            assert kind == "fused"
            ex = make_executor(bump_struct.edges, bump_struct.n_vertices,
                               kind="auto", n_threads=8)
            assert isinstance(ex, SerialExecutor)

    def test_single_thread_never_parallel(self, bump_struct):
        kind = resolve_auto_kind(bump_struct.edges, bump_struct.n_vertices,
                                 n_threads=1)
        assert kind in (("fused", "compiled") if numba_available()
                        else ("fused",))

    @pytest.mark.skipif(numba_available(),
                        reason="with numba the compiled family preempts "
                               "the colored-threaded crossover")
    def test_fat_colors_resolve_to_threaded(self, monkeypatch):
        # A path graph: max degree 2, so the balanced colouring needs two
        # colours of ~ne/2 edges each — per-colour width crosses the
        # threshold once ne >= 2 * AUTO_COLOR_EDGE_THRESHOLD.  Pretend
        # the host has cores so the single-core guard stays out of the way.
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        nv = 2 * AUTO_COLOR_EDGE_THRESHOLD + 1
        edges = np.column_stack([np.arange(nv - 1), np.arange(1, nv)])
        assert resolve_auto_kind(edges, nv, n_threads=4) == "colored-threaded"

    @pytest.mark.skipif(numba_available(),
                        reason="with numba the compiled family preempts "
                               "the colored-threaded crossover")
    def test_single_core_host_never_threaded(self, monkeypatch):
        # Same fat-colour mesh, but on a single-core host the thread
        # pool is pure overhead (BENCH_residual.json measured it 1.7x
        # slower than serial) — auto must stay on the fused pipeline
        # regardless of the requested thread count.
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        nv = 2 * AUTO_COLOR_EDGE_THRESHOLD + 1
        edges = np.column_stack([np.arange(nv - 1), np.arange(1, nv)])
        assert resolve_auto_kind(edges, nv, n_threads=4) == "fused"
        # os.cpu_count() can legitimately return None; treat it as 1.
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert resolve_auto_kind(edges, nv, n_threads=4) == "fused"

    def test_empty_edges_resolve_to_fused(self):
        assert resolve_auto_kind(np.zeros((0, 2), dtype=np.int64), 5,
                                 n_threads=4) == "fused"

    def test_auto_solver_matches_serial(self, bump_struct, winf):
        w_serial = EulerSolver(bump_struct, winf,
                               SolverConfig(executor="serial")).step(
            EulerSolver(bump_struct, winf, SolverConfig()).freestream_solution())
        auto = EulerSolver(bump_struct, winf, SolverConfig(executor="auto"))
        w_auto = auto.step(auto.freestream_solution())
        np.testing.assert_allclose(w_auto, w_serial, rtol=1e-12, atol=1e-13)
