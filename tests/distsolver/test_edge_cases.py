"""Distributed-solver edge cases: empty ranks, degenerate partitions."""

import numpy as np
import pytest

from repro.distsolver import DistributedEulerSolver
from repro.solver import EulerSolver, SolverConfig


class TestEmptyRank:
    def test_three_parts_one_empty(self, bump_struct, winf):
        from repro.distsolver.partitioned_mesh import partition_solver_data
        from repro.solver import build_boundary_data
        from repro.parti import TranslationTable
        asg = np.zeros(bump_struct.n_vertices, dtype=np.int32)
        asg[bump_struct.n_vertices // 2:] = 2     # rank 1 empty
        bdata = build_boundary_data(bump_struct)
        dmesh = partition_solver_data(bump_struct, bdata, asg)
        assert dmesh.n_ranks == 3
        assert dmesh.ranks[1].n_owned == 0
        assert dmesh.ranks[1].n_edges == 0

    def test_empty_rank_solver_matches_sequential(self, bump_struct, winf):
        asg = np.zeros(bump_struct.n_vertices, dtype=np.int32)
        asg[bump_struct.n_vertices // 2:] = 2
        dist = DistributedEulerSolver(bump_struct, winf, asg, SolverConfig())
        seq = EulerSolver(bump_struct, winf, SolverConfig())
        w_d = dist.step(dist.freestream_solution())
        w_s = seq.step(seq.freestream_solution())
        np.testing.assert_allclose(dist.collect(w_d), w_s,
                                   rtol=1e-12, atol=1e-13)


class TestPathologicalPartitions:
    def test_alternating_assignment(self, bump_struct, winf):
        # Worst-case partition: alternating owners maximise the cut; the
        # solver must still be exact (just slow on a real machine).
        asg = (np.arange(bump_struct.n_vertices) % 2).astype(np.int32)
        dist = DistributedEulerSolver(bump_struct, winf, asg, SolverConfig())
        seq = EulerSolver(bump_struct, winf, SolverConfig())
        w_d = dist.step(dist.freestream_solution())
        w_s = seq.step(seq.freestream_solution())
        np.testing.assert_allclose(dist.collect(w_d), w_s,
                                   rtol=1e-12, atol=1e-13)

    def test_alternating_partition_traffic_dominates(self, bump_struct,
                                                     winf):
        asg_bad = (np.arange(bump_struct.n_vertices) % 2).astype(np.int32)
        asg_good = (np.arange(bump_struct.n_vertices)
                    < bump_struct.n_vertices // 2).astype(np.int32)
        bad = DistributedEulerSolver(bump_struct, winf, asg_bad,
                                     SolverConfig())
        good = DistributedEulerSolver(bump_struct, winf, asg_good,
                                      SolverConfig())
        bad.step(bad.freestream_solution())
        good.step(good.freestream_solution())
        assert bad.machine.log.total_bytes > 3 * good.machine.log.total_bytes
