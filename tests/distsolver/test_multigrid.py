"""Tests for distributed multigrid and distributed transfer operators."""

import numpy as np
import pytest

from repro.distsolver import DistributedInterp, DistributedMultigrid
from repro.mesh import bump_channel
from repro.multigrid import MultigridHierarchy, build_transfer, mg_cycle
from repro.parti import SimMachine, TranslationTable
from repro.partition import recursive_spectral_bisection


@pytest.fixture(scope="module")
def hierarchy(winf):
    meshes = [bump_channel(12, 2, 4), bump_channel(6, 2, 2)]
    return MultigridHierarchy(meshes, winf)


@pytest.fixture(scope="module")
def assignments(hierarchy):
    return [recursive_spectral_bisection(lv.solver.struct.edges,
                                         lv.solver.n_vertices, 4)
            for lv in hierarchy.levels]


@pytest.fixture(scope="module")
def dmg(hierarchy, assignments, winf):
    return DistributedMultigrid(hierarchy, assignments, winf)


class TestDistributedInterp:
    def test_apply_matches_sequential(self, hierarchy, assignments, rng):
        fine_lv = hierarchy.levels[0]
        op = fine_lv.from_coarse
        machine = SimMachine(4)
        coarse_table = TranslationTable(assignments[1], 4)
        fine_table = TranslationTable(assignments[0], 4)
        dint = DistributedInterp(op, coarse_table, fine_table, machine, "t")
        vals = rng.standard_normal((hierarchy.levels[1].solver.n_vertices, 5))
        seq = op.apply(vals)
        dist_out = dint.apply(coarse_table.scatter_global_array(vals))
        collected = fine_table.gather_global_array(dist_out)
        np.testing.assert_allclose(collected, seq, atol=1e-13)

    def test_transpose_matches_sequential(self, hierarchy, assignments, rng):
        fine_lv = hierarchy.levels[0]
        op = fine_lv.from_coarse
        machine = SimMachine(4)
        coarse_table = TranslationTable(assignments[1], 4)
        fine_table = TranslationTable(assignments[0], 4)
        dint = DistributedInterp(op, coarse_table, fine_table, machine, "t")
        vals = rng.standard_normal((hierarchy.levels[0].solver.n_vertices, 5))
        seq = op.transpose_apply(vals)
        dist_out = dint.transpose_apply(fine_table.scatter_global_array(vals))
        collected = coarse_table.gather_global_array(dist_out)
        np.testing.assert_allclose(collected, seq, atol=1e-12)

    def test_rejects_unequal_rank_counts(self, hierarchy, assignments):
        op = hierarchy.levels[0].from_coarse
        with pytest.raises(ValueError, match="equal rank"):
            DistributedInterp(op, TranslationTable(assignments[1], 4),
                              TranslationTable(assignments[0][:0 + len(assignments[0])] % 3, 3),
                              SimMachine(4), "t")


class TestDistributedMultigrid:
    def test_cycle_matches_sequential(self, hierarchy, dmg):
        w_seq = hierarchy.freestream_solution()
        w_dist = dmg.freestream_solution()
        for gamma in (1, 2):
            w_s = mg_cycle(hierarchy, w_seq, gamma=gamma)
            w_d = dmg.mg_cycle([w.copy() for w in w_dist], gamma=gamma)
            np.testing.assert_allclose(dmg.solvers[0].collect(w_d), w_s,
                                       rtol=1e-11, atol=1e-12)

    def test_multi_cycle_trajectory_matches(self, hierarchy, dmg):
        w_seq = hierarchy.freestream_solution()
        w_dist = dmg.freestream_solution()
        for _ in range(3):
            w_seq = mg_cycle(hierarchy, w_seq, gamma=2)
            w_dist = dmg.mg_cycle(w_dist, gamma=2)
        np.testing.assert_allclose(dmg.solvers[0].collect(w_dist), w_seq,
                                   rtol=1e-10, atol=1e-11)

    def test_transfer_traffic_small_fraction(self, dmg):
        # Section 4.4: inter-grid transfer communication "constitute[s] a
        # small fraction of the total communication costs".
        dmg.machine.log.reset()
        dmg.run(n_cycles=2, gamma=2)
        log = dmg.machine.log
        transfer_bytes = sum(p.total_bytes for name, p in log.phases.items()
                             if name.startswith("transfer"))
        assert transfer_bytes < 0.25 * log.total_bytes

    def test_run_history(self, dmg):
        _, hist = dmg.run(n_cycles=2, gamma=1)
        assert len(hist) == 3

    def test_rejects_wrong_assignment_count(self, hierarchy, assignments,
                                            winf):
        with pytest.raises(ValueError, match="one partition per level"):
            DistributedMultigrid(hierarchy, assignments[:1], winf)

    def test_level_phases_prefixed(self, dmg):
        dmg.machine.log.reset()
        dmg.run(n_cycles=1, gamma=1)
        names = set(dmg.machine.log.phases)
        assert any(n.startswith("L0-") for n in names)
        assert any(n.startswith("L1-") for n in names)


class TestDistributedFmg:
    def test_matches_sequential_fmg(self, hierarchy, assignments, winf):
        from repro.distsolver import distributed_fmg_start
        from repro.multigrid import fmg_start
        dmg2 = DistributedMultigrid(hierarchy, assignments, winf)
        w_d = distributed_fmg_start(dmg2, cycles_per_level=3)
        w_s = fmg_start(hierarchy, cycles_per_level=3)
        np.testing.assert_allclose(dmg2.solvers[0].collect(w_d), w_s,
                                   rtol=1e-11, atol=1e-12)

    def test_better_start_than_freestream(self, hierarchy, assignments,
                                          winf):
        from repro.distsolver import distributed_fmg_start
        dmg2 = DistributedMultigrid(hierarchy, assignments, winf)
        w_d = distributed_fmg_start(dmg2, cycles_per_level=5)
        fine = dmg2.solvers[0]
        r_fmg = fine.density_residual_norm(w_d)
        r_cold = fine.density_residual_norm(fine.freestream_solution())
        assert r_fmg < r_cold
