"""The shared-memory ghost transport and the mp messaging contracts.

Four layers of guarantees:

* **Channel protocol** — the double-buffered slab handshake: slot reuse
  blocks until the receiver releases, a lost or reordered control
  message raises :class:`TransportProtocolError` instead of returning
  stale slab contents, and the control descriptors that replace the
  pickled payloads stay below ``PIPE_BUF`` (their pipe writes are
  atomic, which is why the shm transport needs no send locks).

* **Messaging contracts** — the scatter-return landing map is built
  independently of the gather packing (the old code aliased them), the
  out-of-phase stash keeps per-sender FIFO, result payload arity is a
  typed :class:`ResultContractError`, and concurrent over-``PIPE_BUF``
  pipe writes behind the per-inbox lock never interleave.

* **Bit identity** — Hypothesis drives random flow states and rank
  counts through the sequential operator, the mp pipe backend and the
  mp shm backend: pipe matches sequential to summation-order tolerance,
  shm matches pipe bit-for-bit, and repeated pipe runs are
  deterministic (the sorted-sender scatter fold).

* **Faults on the split fabric** — drop/corrupt now act on control
  messages and slab contents respectively: a persistently dropped
  control message surfaces as :class:`RankFailedError` naming the rank,
  a corrupted slab payload as :class:`DivergenceError`, and transient
  drops recover bit-identically (the staged slab payload survives the
  retry).
"""

from __future__ import annotations

import multiprocessing as mp
import queue as _queue
import time

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.constants import NVAR
from repro.distsolver import run_distributed_mp
from repro.distsolver.mp_exchange import (_PhaseStash, _rank_payload,
                                          mp_convective_residual)
from repro.distsolver.mp_solver import (PIPE_CAPACITY, _PipeTransport,
                                        widen_pipe)
from repro.distsolver.partitioned_mesh import partition_solver_data
from repro.distsolver.shm_channel import (CTRL_BYTES, N_SLOTS, ShmSlabPool,
                                          is_shm_ctrl, pair_extents)
from repro.mesh import box_mesh, build_edge_structure
from repro.partition import recursive_spectral_bisection
from repro.resilience import (DivergenceError, FaultInjector, FaultSpec,
                              RankFailedError, ResultContractError,
                              TransportProtocolError, collect_results)
from repro.scatter import EdgeScatter
from repro.solver import SolverConfig, build_boundary_data
from repro.solver.config import TRANSPORTS
from repro.solver.flux import convective_operator
from repro.state import freestream_state

#: Linux guarantees atomicity of pipe writes up to this size.
PIPE_BUF = 4096


@pytest.fixture(scope="module")
def dmesh3(bump_struct):
    asg = recursive_spectral_bisection(bump_struct.edges,
                                       bump_struct.n_vertices, 3)
    return partition_solver_data(bump_struct,
                                 build_boundary_data(bump_struct), asg)


@pytest.fixture(scope="module")
def w0_global(bump_struct, winf):
    return np.tile(winf, (bump_struct.n_vertices, 1))


def _pool(extents=None):
    return ShmSlabPool(extents or {(0, 1): (6, 5), (1, 0): (6, 5)})


class TestShmChannel:
    def test_round_trip_and_slot_reuse(self):
        pool = _pool()
        try:
            ch = pool.channel(0, 1)
            deadline = time.monotonic() + 1.0
            for seq in range(1, 6):        # reuses both slots repeatedly
                ctrl, view = ch.begin_send((3, 5), deadline)
                payload = np.full((3, 5), float(seq))
                np.copyto(view, payload)
                got_seq, got = ch.open(ctrl)
                assert got_seq == seq
                np.testing.assert_array_equal(got, payload)
                ch.release(seq)
            assert is_shm_ctrl(ctrl)
        finally:
            pool.close()
            pool.unlink()

    def test_unreleased_slots_block_the_sender(self):
        pool = _pool()
        try:
            ch = pool.channel(0, 1)
            deadline = time.monotonic() + 1.0
            for _ in range(N_SLOTS):
                ch.begin_send((2, 2), deadline)
            # Both slots claimed, nothing released: the next claim must
            # time out (returns None) instead of overwriting live data.
            t0 = time.monotonic()
            assert ch.begin_send((2, 2), time.monotonic() + 0.05) is None
            assert time.monotonic() - t0 < 1.0
            # Releasing the oldest seq unblocks exactly one claim.
            ch.release(1)
            assert ch.begin_send((2, 2), time.monotonic() + 0.5) is not None
        finally:
            pool.close()
            pool.unlink()

    def test_sequence_gap_raises(self):
        pool = _pool()
        try:
            ch = pool.channel(0, 1)
            deadline = time.monotonic() + 1.0
            ch.begin_send((2, 2), deadline)          # seq 1 in flight
            ctrl2, _ = ch.begin_send((2, 2), deadline)
            # Receiver sees seq 2 first: a control message was lost or
            # reordered, so the slab contents cannot be trusted.
            with pytest.raises(TransportProtocolError) as excinfo:
                ch.open(ctrl2)
            assert "0->1" in str(excinfo.value)
            assert "expected 1" in str(excinfo.value)
        finally:
            pool.close()
            pool.unlink()

    def test_oversized_payload_raises(self):
        pool = _pool()
        try:
            ch = pool.channel(0, 1)
            with pytest.raises(TransportProtocolError) as excinfo:
                ch.begin_send((100, 100), time.monotonic() + 1.0)
            assert "overflows" in str(excinfo.value)
        finally:
            pool.close()
            pool.unlink()

    def test_control_descriptor_is_atomic_on_the_pipe(self):
        """The whole point of the descriptor: it fits in PIPE_BUF.

        Concurrent writers into one inbox pipe interleave writes larger
        than PIPE_BUF; the shm transport stays lock-free because its
        control messages (op header + descriptor) never get near it.
        """
        import pickle
        ctrl = ("shm", 1 << 40, 1, (1 << 20, 2 * NVAR))
        msg = pickle.dumps((7, 1 << 20, ctrl))
        # Connection.send adds a 4-byte length header.
        assert len(msg) + 4 < PIPE_BUF
        assert len(msg) <= CTRL_BYTES

    def test_pair_extents_cover_asymmetric_directions(self, bump_struct):
        """Every directed pair gets a slab sized for the larger of the
        gather and scatter-return messages — even when the schedule's
        two directions have different lengths."""
        asg = recursive_spectral_bisection(bump_struct.edges,
                                           bump_struct.n_vertices, 3)
        dmesh = partition_solver_data(bump_struct,
                                      build_boundary_data(bump_struct), asg)
        schedule = dmesh.schedule
        counts = {pair: len(idx)
                  for pair, idx in schedule.send_indices.items()}
        assert any(counts[a, b] != counts[b, a] for (a, b) in counts), \
            "fixture not asymmetric — pick a different partition"
        extents = pair_extents(schedule, max_cols=NVAR)
        for (a, b), n in counts.items():
            assert (a, b) in extents and (b, a) in extents
            rows, cols = extents[a, b]
            assert cols == NVAR
            assert rows == max(counts[a, b], counts[b, a])


class TestMessagingContracts:
    def test_return_indices_built_independently(self, bump_struct):
        """Satellite of the aliasing fix: the scatter-return landing map
        must equal the owner's packed gather indices by *construction
        from the schedule*, not by aliasing the send dict."""
        asg = recursive_spectral_bisection(bump_struct.edges,
                                          bump_struct.n_vertices, 3)
        dmesh = partition_solver_data(bump_struct,
                                      build_boundary_data(bump_struct), asg)
        schedule = dmesh.schedule
        w = np.tile(freestream_state(0.5, 1.0),
                    (bump_struct.n_vertices, 1))
        for rank in range(3):
            owned = w[dmesh.table.owned_globals[rank]]
            payload = _rank_payload(dmesh, schedule, rank, owned)
            assert payload["return_indices"] is not payload["send_indices"]
            for requester, idx in payload["return_indices"].items():
                np.testing.assert_array_equal(
                    idx, schedule.send_indices[rank, requester])

    def test_asymmetric_pair_end_to_end(self, bump_struct, rng):
        """Unequal per-direction message lengths through both transports
        against the sequential operator (regression for the aliased
        scatter-return map, which only bites off the symmetric path)."""
        asg = recursive_spectral_bisection(bump_struct.edges,
                                           bump_struct.n_vertices, 3)
        dmesh = partition_solver_data(bump_struct,
                                      build_boundary_data(bump_struct), asg)
        w = np.tile(freestream_state(0.5, 1.0),
                    (bump_struct.n_vertices, 1))
        w *= rng.uniform(0.95, 1.05, (bump_struct.n_vertices, 1))
        q_seq = convective_operator(
            w, bump_struct.edges, bump_struct.eta,
            EdgeScatter(bump_struct.edges, bump_struct.n_vertices))
        for transport in TRANSPORTS:
            q_mp = mp_convective_residual(dmesh, w, transport=transport)
            np.testing.assert_allclose(q_mp, q_seq, rtol=1e-12, atol=1e-14)

    def test_phase_stash_keeps_per_sender_fifo(self):
        recv_end, send_end = mp.Pipe(duplex=False)
        stash = _PhaseStash(recv_end)
        # Out-of-phase arrival: scatter messages land while the worker
        # is waiting on gather, two from sender 2 (order matters) with a
        # sender-1 message between them.
        send_end.send((2, "scatter", "s2-first"))
        send_end.send((1, "scatter", "s1"))
        send_end.send((2, "scatter", "s2-second"))
        send_end.send((1, "gather", "g1"))
        assert stash.recv("gather") == (1, "g1")
        assert set(stash._stash) == {"scatter"}
        # Targeted receive skips sender 1's entry without reordering
        # sender 2's queue.
        assert stash.recv("scatter", want_src=2) == (2, "s2-first")
        assert stash.recv("scatter", want_src=2) == (2, "s2-second")
        assert stash.recv("scatter", want_src=1) == (1, "s1")
        assert stash._stash == {}

    def test_phase_stash_pulls_targeted_src_from_pipe(self):
        recv_end, send_end = mp.Pipe(duplex=False)
        stash = _PhaseStash(recv_end)
        send_end.send((2, "scatter", "early"))
        send_end.send((1, "scatter", "wanted"))
        assert stash.recv("scatter", want_src=1) == (1, "wanted")
        assert stash.recv("scatter", want_src=2) == (2, "early")

    def test_transport_targeted_recv_sorted_fold_order(self):
        """mp_solver's scatter fold asks for senders in sorted order;
        the transport must serve them regardless of arrival order."""
        recv_end, send_end = mp.Pipe(duplex=False)
        transport = _PipeTransport(0, recv_end, {}, {}, {})
        send_end.send((2, 4, "from-2"))
        send_end.send((1, 4, "from-1"))
        assert transport._recv_op_from(4, 1) == "from-1"
        assert transport._recv_op_from(4, 2) == "from-2"
        assert transport._stash == {}

    def test_result_contract_error_names_rank(self):
        class _DoneProc:
            exitcode = 0

            def is_alive(self):
                return False

        q = _queue.Queue()
        q.put(("ok", 1, np.zeros(3), {"extra": "field"}))
        with pytest.raises(ResultContractError) as excinfo:
            collect_results(q, [_DoneProc(), _DoneProc()], 2, timeout=1.0,
                            expect_fields=1)
        assert excinfo.value.rank == 1
        assert excinfo.value.expected == 1
        assert excinfo.value.got == 2
        assert "rank 1" in str(excinfo.value)
        assert "expected 1" in str(excinfo.value)

    def test_locked_concurrent_writers_never_interleave(self):
        """Regression for the pipe-shred bug: unlocked concurrent sends
        of over-PIPE_BUF payloads interleave mid-message and the reader
        dies unpickling.  With the per-inbox lock (and the widened
        kernel buffer) every payload survives intact."""
        ctx = mp.get_context("fork")
        recv_end, send_end = ctx.Pipe(duplex=False)
        widen_pipe(send_end)
        lock = ctx.Lock()
        n_writers, n_msgs, rows = 3, 8, 4096    # ~160 KiB per message

        def writer(writer_id):
            payload = np.full((rows, 5), float(writer_id))
            for _ in range(n_msgs):
                with lock:
                    send_end.send((writer_id, payload))

        procs = [ctx.Process(target=writer, args=(k,))
                 for k in range(n_writers)]
        for p in procs:
            p.start()
        try:
            for _ in range(n_writers * n_msgs):
                writer_id, payload = recv_end.recv()
                assert payload.shape == (rows, 5)
                assert np.all(payload == float(writer_id))
        finally:
            for p in procs:
                p.join(timeout=10.0)
                if p.is_alive():    # pragma: no cover - defensive
                    p.kill()

    def test_widen_pipe_grows_kernel_buffer(self):
        recv_end, send_end = mp.Pipe(duplex=False)
        got = widen_pipe(send_end)
        # 0 only where F_SETPIPE_SZ is unavailable or clamped; on the
        # Linux CI hosts the request must be honoured in full.
        assert got == 0 or got >= PIPE_CAPACITY


class TestBitIdentity:
    COMMON = dict(deadline=None, max_examples=5,
                  suppress_health_check=[HealthCheck.too_slow,
                                         HealthCheck.data_too_large])

    @settings(**COMMON)
    @given(seed=st.integers(0, 2**31 - 1), n_ranks=st.sampled_from([2, 3]))
    def test_sim_vs_pipe_vs_shm(self, seed, n_ranks):
        mesh = box_mesh(5, 5, 5)
        struct = build_edge_structure(mesh)
        asg = recursive_spectral_bisection(struct.edges, struct.n_vertices,
                                           n_ranks)
        dmesh = partition_solver_data(struct, build_boundary_data(struct),
                                      asg)
        rng = np.random.default_rng(seed)
        w = np.tile(freestream_state(0.5, 1.0), (struct.n_vertices, 1))
        w *= 1.0 + 0.02 * rng.standard_normal(w.shape)
        q_seq = convective_operator(
            w, struct.edges, struct.eta,
            EdgeScatter(struct.edges, struct.n_vertices))
        scale = float(np.max(np.abs(q_seq))) or 1.0
        q_pipe = mp_convective_residual(dmesh, w, transport="pipe")
        q_shm = mp_convective_residual(dmesh, w, transport="shm")
        assert float(np.max(np.abs(q_pipe - q_seq))) / scale <= 3e-15
        assert np.array_equal(q_pipe, q_shm), \
            "shm slabs must be bit-identical to the pipe baseline"

    def test_full_solver_transports_bit_identical(self, dmesh3, w0_global,
                                                  winf):
        runs = {}
        for transport in TRANSPORTS:
            cfg = SolverConfig(transport=transport)
            runs[transport] = run_distributed_mp(dmesh3, w0_global, winf,
                                                 cfg, n_cycles=2)
        assert np.array_equal(runs["pipe"], runs["shm"])

    def test_pipe_runs_are_deterministic(self, dmesh3, w0_global, winf):
        """Run-to-run determinism of the baseline itself: the sorted-
        sender scatter fold removed the arrival-order dependence that
        made even pipe-vs-pipe differ in the low bits."""
        cfg = SolverConfig()
        first = run_distributed_mp(dmesh3, w0_global, winf, cfg, n_cycles=2)
        second = run_distributed_mp(dmesh3, w0_global, winf, cfg, n_cycles=2)
        assert np.array_equal(first, second)

    def test_blocking_mode_transports_bit_identical(self, dmesh3, w0_global,
                                                    winf):
        runs = {}
        for transport in TRANSPORTS:
            cfg = SolverConfig(dist_mode="blocking", transport=transport)
            runs[transport] = run_distributed_mp(dmesh3, w0_global, winf,
                                                 cfg, n_cycles=2)
        assert np.array_equal(runs["pipe"], runs["shm"])


class TestShmFaults:
    def test_transient_control_drop_recovers_bit_identically(
            self, dmesh3, w0_global, winf):
        """A dropped *control message* is retried; the staged slab
        payload survives the retry, so the result is bit-identical."""
        cfg = SolverConfig(transport="shm")
        w_clean = run_distributed_mp(dmesh3, w0_global, winf, cfg,
                                     n_cycles=2)
        injector = FaultInjector([FaultSpec(kind="drop", rank=0, op=2,
                                            count=2)])
        w_faulty = run_distributed_mp(dmesh3, w0_global, winf, cfg,
                                      n_cycles=2, injector=injector,
                                      max_send_retries=3)
        assert np.array_equal(w_faulty, w_clean)

    def test_persistent_control_drop_names_rank(self, dmesh3, w0_global,
                                                winf):
        injector = FaultInjector([FaultSpec(kind="drop", rank=1, op=2,
                                            count=10_000)])
        t0 = time.monotonic()
        with pytest.raises(RankFailedError) as excinfo:
            run_distributed_mp(dmesh3, w0_global, winf,
                               SolverConfig(transport="shm"), n_cycles=2,
                               injector=injector, max_send_retries=2,
                               op_timeout=5.0)
        assert time.monotonic() - t0 < 15.0
        assert excinfo.value.rank == 1
        assert "rank 1" in str(excinfo.value)

    def test_corrupt_slab_payload_is_caught(self, dmesh3, w0_global, winf):
        """The injector's NaN lands in the shared-memory slab itself;
        the divergence guard catches it at the cycle boundary."""
        injector = FaultInjector([FaultSpec(kind="corrupt", rank=0, op=1,
                                            count=1)])
        with pytest.raises(DivergenceError):
            run_distributed_mp(dmesh3, w0_global, winf,
                               SolverConfig(transport="shm"), n_cycles=2,
                               injector=injector)

    def test_delay_on_shm_changes_nothing(self, dmesh3, w0_global, winf):
        cfg = SolverConfig(transport="shm")
        w_clean = run_distributed_mp(dmesh3, w0_global, winf, cfg,
                                     n_cycles=1)
        injector = FaultInjector([FaultSpec(kind="delay", rank=1, op=3,
                                            delay_s=0.2, count=2)])
        w_delayed = run_distributed_mp(dmesh3, w0_global, winf, cfg,
                                       n_cycles=1, injector=injector)
        assert np.array_equal(w_delayed, w_clean)
