"""Tests for edge colouring and the coloured executor."""

import numpy as np
import pytest

from repro.coloring import (ColoredEdgeExecutor, color_edges,
                            split_into_subgroups, verify_coloring)
from repro.scatter import EdgeScatter


class TestColorEdges:
    def test_conflict_free_on_meshes(self, bump_struct):
        col = color_edges(bump_struct.edges, bump_struct.n_vertices)
        assert verify_coloring(bump_struct.edges, col,
                               bump_struct.n_vertices)

    def test_conflict_free_on_shell(self, shell_struct):
        col = color_edges(shell_struct.edges, shell_struct.n_vertices)
        assert verify_coloring(shell_struct.edges, col,
                               shell_struct.n_vertices)

    def test_covers_all_edges(self, bump_struct):
        col = color_edges(bump_struct.edges, bump_struct.n_vertices)
        total = sum(len(g) for g in col.groups)
        assert total == bump_struct.n_edges

    def test_color_count_near_max_degree(self, bump_struct):
        # Greedy edge colouring needs at most 2*maxdeg - 1 colours and on
        # meshes stays close to maxdeg — the paper's "20 to 30 groups".
        col = color_edges(bump_struct.edges, bump_struct.n_vertices)
        degree = np.zeros(bump_struct.n_vertices, dtype=int)
        np.add.at(degree, bump_struct.edges.ravel(), 1)
        maxdeg = degree.max()
        assert maxdeg <= col.n_colors <= 2 * maxdeg - 1

    def test_groups_sorted_large_first(self, bump_struct):
        col = color_edges(bump_struct.edges, bump_struct.n_vertices)
        sizes = col.group_sizes()
        assert np.all(np.diff(sizes) <= 0)

    def test_colors_consistent_with_groups(self, bump_struct):
        col = color_edges(bump_struct.edges, bump_struct.n_vertices)
        for c, g in enumerate(col.groups):
            assert np.all(col.colors[g] == c)

    def test_empty_graph(self):
        col = color_edges(np.zeros((0, 2), dtype=int), 5)
        assert col.n_colors == 0

    def test_path_graph_two_colors(self):
        edges = np.array([[0, 1], [1, 2], [2, 3], [3, 4]])
        col = color_edges(edges, 5)
        assert col.n_colors == 2

    def test_star_graph_needs_degree_colors(self):
        edges = np.array([[0, k] for k in range(1, 8)])
        col = color_edges(edges, 8)
        assert col.n_colors == 7

    def test_vector_lengths(self, bump_struct):
        col = color_edges(bump_struct.edges, bump_struct.n_vertices)
        vl16 = col.vector_lengths(16)
        vl1 = col.vector_lengths(1)
        assert np.all(vl16 <= vl1)
        assert np.all(vl16 >= 1)


class TestSubgroups:
    def test_split_covers_group(self):
        group = np.arange(103)
        subs = split_into_subgroups(group, 16)
        assert len(subs) == 16
        np.testing.assert_array_equal(np.concatenate(subs), group)

    def test_balanced_within_one(self):
        subs = split_into_subgroups(np.arange(103), 16)
        sizes = [len(s) for s in subs]
        assert max(sizes) - min(sizes) <= 1


class TestColoredExecutor:
    def test_matches_reference_scatter(self, bump_struct, rng):
        col = color_edges(bump_struct.edges, bump_struct.n_vertices)
        ex = ColoredEdgeExecutor(bump_struct.edges, col,
                                 bump_struct.n_vertices)
        ref = EdgeScatter(bump_struct.edges, bump_struct.n_vertices)
        vals = rng.standard_normal((bump_struct.n_edges, 5))
        np.testing.assert_allclose(ex.signed(vals), ref.signed(vals),
                                   atol=1e-12)

    def test_wrong_coloring_would_lose_updates(self):
        # Show the executor depends on conflict-freedom: force two edges
        # sharing a vertex into one "colour" and observe a lost update —
        # this is the failure mode the colouring prevents.
        from repro.coloring.greedy import EdgeColoring
        edges = np.array([[0, 1], [0, 2]])
        bogus = EdgeColoring(colors=np.array([0, 0]),
                             groups=[np.array([0, 1])])
        ex = ColoredEdgeExecutor(edges, bogus, 3)
        out = ex.signed(np.ones(2))
        # Correct answer at vertex 0 is +2; the fancy-indexed store keeps
        # only one update.
        assert out[0] != 2.0

    def test_parallel_schedule_covers_everything(self, bump_struct):
        col = color_edges(bump_struct.edges, bump_struct.n_vertices)
        ex = ColoredEdgeExecutor(bump_struct.edges, col,
                                 bump_struct.n_vertices)
        tasks = ex.parallel_schedule(8)
        covered = np.concatenate([t[2] for t in tasks])
        assert np.sort(covered).tolist() == list(range(bump_struct.n_edges))

    def test_parallel_schedule_cpu_bounds(self, bump_struct):
        col = color_edges(bump_struct.edges, bump_struct.n_vertices)
        ex = ColoredEdgeExecutor(bump_struct.edges, col,
                                 bump_struct.n_vertices)
        for _, cpu, _ in ex.parallel_schedule(4):
            assert 0 <= cpu < 4


class TestBalancedColoring:
    def test_conflict_free(self, bump_struct):
        from repro.coloring import color_edges_balanced
        col = color_edges_balanced(bump_struct.edges, bump_struct.n_vertices)
        assert verify_coloring(bump_struct.edges, col,
                               bump_struct.n_vertices)

    def test_covers_all_edges(self, bump_struct):
        from repro.coloring import color_edges_balanced
        col = color_edges_balanced(bump_struct.edges, bump_struct.n_vertices)
        assert sum(len(g) for g in col.groups) == bump_struct.n_edges

    def test_better_balanced_than_greedy(self, bump_struct):
        from repro.coloring import color_edges_balanced
        greedy = color_edges(bump_struct.edges, bump_struct.n_vertices)
        balanced = color_edges_balanced(bump_struct.edges,
                                        bump_struct.n_vertices)
        spread_g = greedy.group_sizes().max() / greedy.group_sizes().min()
        spread_b = balanced.group_sizes().max() / balanced.group_sizes().min()
        assert spread_b < spread_g

    def test_min_vector_length_improves(self, bump_struct):
        from repro.coloring import color_edges_balanced
        greedy = color_edges(bump_struct.edges, bump_struct.n_vertices)
        balanced = color_edges_balanced(bump_struct.edges,
                                        bump_struct.n_vertices)
        assert balanced.group_sizes().min() >= greedy.group_sizes().min()

    def test_executor_equivalence(self, bump_struct, rng):
        from repro.coloring import ColoredEdgeExecutor, color_edges_balanced
        col = color_edges_balanced(bump_struct.edges, bump_struct.n_vertices)
        ex = ColoredEdgeExecutor(bump_struct.edges, col,
                                 bump_struct.n_vertices)
        ref = EdgeScatter(bump_struct.edges, bump_struct.n_vertices)
        vals = rng.standard_normal((bump_struct.n_edges, 3))
        np.testing.assert_allclose(ex.signed(vals), ref.signed(vals),
                                   atol=1e-12)
