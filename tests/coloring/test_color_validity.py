"""Property tests: every colouring the repo produces is conflict-free.

The entire shared-memory story rests on one invariant — inside a colour
no two edges touch the same vertex.  These tests drive the greedy,
balanced and vectorized-executor paths over arbitrary random edge lists
(not just the fixture meshes) and check the invariant three ways: the
touch-bitmap of :class:`repro.analysis.ColorRaceSanitizer`, the package's
own :func:`verify_coloring`, and an independent bincount here.  A
deliberately corrupted colouring must be caught by all of them.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.analysis import ColorRaceSanitizer, SanitizerError
from repro.coloring import (ColoredEdgeExecutor, EdgeColoring, color_edges,
                            color_edges_balanced, split_into_subgroups,
                            verify_coloring)

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])


def random_edges(seed: int, n_vertices: int, n_edges: int) -> np.ndarray:
    """Random simple edge list (no self-loops, no duplicate edges)."""
    rng = np.random.default_rng(seed)
    n_edges = min(n_edges, n_vertices * (n_vertices - 1) // 2)
    pairs = set()
    while len(pairs) < n_edges:
        i, j = rng.integers(0, n_vertices, 2)
        if i != j:
            pairs.add((min(i, j), max(i, j)))
    return np.array(sorted(pairs), dtype=np.int64).reshape(-1, 2)


def assert_conflict_free(edges, coloring, nv):
    """The invariant, checked independently of the code under test."""
    for group in coloring.groups:
        touched = np.bincount(edges[group].ravel(), minlength=nv)
        assert touched.max(initial=0) <= 1
    # Groups must also partition the edge set — conflict-free but
    # incomplete would silently drop residual contributions.
    all_ids = np.sort(np.concatenate([np.asarray(g) for g in coloring.groups]))
    np.testing.assert_array_equal(all_ids, np.arange(edges.shape[0]))
    assert verify_coloring(edges, coloring, nv)
    san = ColorRaceSanitizer()
    san.check_coloring(edges, coloring.groups, nv)
    assert san.findings == []


class TestColoringsAreConflictFree:
    @given(seed=st.integers(0, 10_000), nv=st.integers(2, 50))
    @settings(max_examples=80, **COMMON)
    def test_greedy(self, seed, nv):
        rng = np.random.default_rng(seed)
        ne = int(rng.integers(1, max(2, 3 * nv)))
        edges = random_edges(seed, nv, ne)
        assume(edges.shape[0] > 0)
        assert_conflict_free(edges, color_edges(edges, nv), nv)

    @given(seed=st.integers(0, 10_000), nv=st.integers(2, 50),
           cap=st.sampled_from([None, 2, 4, 8]))
    @settings(max_examples=80, **COMMON)
    def test_balanced(self, seed, nv, cap):
        rng = np.random.default_rng(seed)
        ne = int(rng.integers(1, max(2, 3 * nv)))
        edges = random_edges(seed, nv, ne)
        assume(edges.shape[0] > 0)
        coloring = color_edges_balanced(edges, nv, max_colors=cap)
        assert_conflict_free(edges, coloring, nv)

    @given(seed=st.integers(0, 10_000), nv=st.integers(4, 40),
           n_cpus=st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=60, **COMMON)
    def test_vectorized_subgroups(self, seed, nv, n_cpus):
        # The autotasking decomposition: subgroups of one colour must
        # partition the colour (and inherit its conflict-freedom).
        edges = random_edges(seed, nv, 2 * nv)
        assume(edges.shape[0] > 0)
        coloring = color_edges(edges, nv)
        ex = ColoredEdgeExecutor(edges, coloring, nv)
        for color, group in enumerate(coloring.groups):
            subs = split_into_subgroups(group, n_cpus)
            merged = np.concatenate([s for s in subs]) if subs \
                else np.array([], dtype=np.int64)
            np.testing.assert_array_equal(merged, group)
        tasks = ex.parallel_schedule(n_cpus)
        assert sum(sub.size for _, _, sub in tasks) == edges.shape[0]


class TestSanitizerCatchesCorruption:
    @given(seed=st.integers(0, 10_000), nv=st.integers(4, 40))
    @settings(max_examples=60, **COMMON)
    def test_merged_groups_always_race(self, seed, nv):
        edges = random_edges(seed, nv, 2 * nv)
        coloring = color_edges(edges, nv)
        assume(coloring.n_colors >= 2)
        # Greedy puts an edge in colour 1 only because it conflicted with
        # colour 0, so merging the two is guaranteed to race.
        bad_groups = [np.concatenate([coloring.groups[0],
                                      coloring.groups[1]]),
                      *coloring.groups[2:]]
        bad = EdgeColoring(colors=coloring.colors, groups=bad_groups)
        assert not verify_coloring(edges, bad, nv)
        with pytest.raises(SanitizerError, match="color.race"):
            ColorRaceSanitizer().check_coloring(edges, bad.groups, nv)
        san = ColorRaceSanitizer(strict=False)
        san.check_coloring(edges, bad.groups, nv)
        assert any(f.code == "color.race" for f in san.findings)
