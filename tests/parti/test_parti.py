"""Tests for the PARTI runtime: translation, schedules, incremental, machine."""

import numpy as np
import pytest

from repro.parti import (GatherSchedule, IncrementalScheduleBuilder,
                         SimMachine, TranslationTable, build_gather_schedule)


@pytest.fixture()
def table(rng):
    assignment = rng.integers(0, 6, 400).astype(np.int32)
    return TranslationTable(assignment, 6)


class TestTranslationTable:
    def test_owner_matches_assignment(self, table):
        ids = np.arange(table.n_global)
        np.testing.assert_array_equal(table.owner_of(ids), table.assignment)

    def test_local_indices_dense(self, table):
        for r in range(table.n_parts):
            owned = table.owned_globals[r]
            locs = table.local_of(owned)
            np.testing.assert_array_equal(np.sort(locs),
                                          np.arange(owned.size))

    def test_dereference(self, table):
        ids = np.array([0, 5, 77])
        owners, locals_ = table.dereference(ids)
        for g, o, l in zip(ids, owners, locals_):
            assert table.owned_globals[o][l] == g

    def test_scatter_gather_roundtrip(self, table, rng):
        values = rng.standard_normal((table.n_global, 3))
        blocks = table.scatter_global_array(values)
        np.testing.assert_array_equal(table.gather_global_array(blocks),
                                      values)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="out-of-range"):
            TranslationTable(np.array([0, 1, 5]), 2)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            TranslationTable(np.zeros((3, 2), dtype=int))


class TestSimMachine:
    def test_traffic_accounting(self):
        m = SimMachine(3)
        m.exchange({(0, 1): np.zeros(10), (1, 2): np.zeros(5)}, "phase")
        p = m.log.phase("phase")
        assert p.total_msgs == 2
        assert p.total_bytes == 15 * 8
        assert p.msgs_sent[0] == 1 and p.msgs_recv[1] == 1

    def test_self_messages_free(self):
        m = SimMachine(2)
        m.exchange({(0, 0): np.zeros(100)}, "p")
        assert m.log.total_bytes == 0

    def test_empty_messages_not_sent(self):
        m = SimMachine(2)
        delivered = m.exchange({(0, 1): np.zeros(0)}, "p")
        assert (0, 1) not in delivered
        assert m.log.total_msgs == 0

    def test_rejects_bad_ranks(self):
        m = SimMachine(2)
        with pytest.raises(ValueError):
            m.exchange({(0, 5): np.zeros(1)}, "p")

    def test_occurrences_counted(self):
        m = SimMachine(2)
        for _ in range(3):
            m.exchange({(0, 1): np.zeros(1)}, "p")
        assert m.log.phase("p").occurrences == 3

    def test_report_renders(self):
        m = SimMachine(2)
        m.exchange({(0, 1): np.zeros(4)}, "alpha")
        text = m.log.report()
        assert "alpha" in text and "total" in text

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            SimMachine(0)


class TestGatherSchedule:
    def test_gather_correctness(self, table, rng):
        req = [rng.choice(table.n_global, 80, replace=False)
               for _ in range(table.n_parts)]
        sched = build_gather_schedule(req, table)
        values = rng.standard_normal((table.n_global, 2))
        owned = table.scatter_global_array(values)
        machine = SimMachine(table.n_parts)
        ghosts = sched.gather(machine, owned)
        for r in range(table.n_parts):
            np.testing.assert_allclose(ghosts[r],
                                       values[sched.ghost_globals[r]])

    def test_owned_ids_dropped(self, table):
        # Requests for locally owned ids never create ghost slots.
        req = [table.owned_globals[r] for r in range(table.n_parts)]
        sched = build_gather_schedule(req, table)
        assert sched.total_ghosts() == 0

    def test_duplicates_deduplicated(self, table):
        ids = np.array([1, 1, 1, 2, 2])
        sched = build_gather_schedule([ids] * table.n_parts, table)
        for r in range(table.n_parts):
            assert sched.ghost_globals[r].size == np.count_nonzero(
                table.owner_of(np.array([1, 2])) != r)

    def test_ghosts_sorted_by_owner(self, table, rng):
        req = [rng.choice(table.n_global, 50, replace=False)
               for _ in range(table.n_parts)]
        sched = build_gather_schedule(req, table)
        for r in range(table.n_parts):
            owners = table.owner_of(sched.ghost_globals[r])
            assert np.all(np.diff(owners) >= 0)

    def test_scatter_add_inverse_counts(self, table, rng):
        req = [rng.choice(table.n_global, 60, replace=False)
               for _ in range(table.n_parts)]
        sched = build_gather_schedule(req, table)
        machine = SimMachine(table.n_parts)
        contrib = [np.ones(sched.ghost_globals[r].size)
                   for r in range(table.n_parts)]
        acc = [np.zeros(table.n_owned[r]) for r in range(table.n_parts)]
        sched.scatter_add(machine, contrib, acc)
        total = table.gather_global_array(acc)
        expect = np.zeros(table.n_global)
        for r in range(table.n_parts):
            expect[sched.ghost_globals[r]] += 1
        np.testing.assert_allclose(total, expect)

    def test_message_aggregation(self, table, rng):
        # One message per (owner, requester) pair regardless of item count.
        req = [rng.choice(table.n_global, 200, replace=False)
               for _ in range(table.n_parts)]
        sched = build_gather_schedule(req, table)
        machine = SimMachine(table.n_parts)
        owned = table.scatter_global_array(rng.standard_normal(table.n_global))
        sched.gather(machine, owned)
        assert machine.log.total_msgs <= table.n_parts * (table.n_parts - 1)


class TestIncrementalSchedules:
    def test_no_refetch_of_known_ids(self, table, rng):
        builder = IncrementalScheduleBuilder(table)
        req1 = [rng.choice(table.n_global, 100, replace=False)
                for _ in range(table.n_parts)]
        builder.add(req1)
        # Second loop references a subset: nothing new to fetch.
        req2 = [r[:40] for r in req1]
        inc2 = builder.add(req2)
        assert inc2.schedule.total_ghosts() == 0

    def test_incremental_smaller_than_independent(self, table, rng):
        builder = IncrementalScheduleBuilder(table)
        req1 = [rng.choice(table.n_global, 100, replace=False)
                for _ in range(table.n_parts)]
        builder.add(req1)
        req2 = [np.concatenate([r[:50], rng.choice(table.n_global, 30)])
                for r in req1]
        inc = builder.add(req2)
        indep = build_gather_schedule(req2, table)
        assert inc.schedule.total_ghosts() < indep.total_ghosts()

    def test_slots_resolve_all_requirements(self, table, rng):
        builder = IncrementalScheduleBuilder(table)
        machine = SimMachine(table.n_parts)
        values = rng.standard_normal(table.n_global)
        owned = table.scatter_global_array(values)

        req1 = [rng.choice(table.n_global, 70, replace=False)
                for _ in range(table.n_parts)]
        inc1 = builder.add(req1)
        req2 = [np.concatenate([r[:30], rng.choice(table.n_global, 40)])
                for r in req1]
        inc2 = builder.add(req2)

        store = [np.zeros(builder.ghost_count(r))
                 for r in range(table.n_parts)]
        builder.gather_increment(machine, inc1, owned, store)
        builder.gather_increment(machine, inc2, owned, store)
        for r in range(table.n_parts):
            req = np.unique(req2[r])
            req = req[table.owner_of(req) != r]
            np.testing.assert_allclose(store[r][inc2.slots_for_required[r]],
                                       values[req])

    def test_slot_stability_across_increments(self, table, rng):
        # Slots allocated by earlier increments keep their meaning.
        builder = IncrementalScheduleBuilder(table)
        req1 = [rng.choice(table.n_global, 50, replace=False)
                for _ in range(table.n_parts)]
        inc1 = builder.add(req1)
        slots_before = [s.copy() for s in inc1.slots_for_required]
        builder.add([rng.choice(table.n_global, 50) for _ in
                     range(table.n_parts)])
        for a, b in zip(slots_before, inc1.slots_for_required):
            np.testing.assert_array_equal(a, b)
