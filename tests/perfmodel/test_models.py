"""Tests for the flop counter, Cray model, Delta model and cache model."""

import numpy as np
import pytest

from repro.perfmodel import (CrayC90, CrayWorkload, DeltaMeasurement,
                             FlopCounter, NullFlopCounter, TouchstoneDelta,
                             edge_loop_hit_rate, effective_node_mflops,
                             model_cray_run, model_cray_table,
                             model_delta_run, node_rate_for_ordering)
from repro.perfmodel.cray import _vector_rate
from repro.perfmodel.delta import phase_level


class TestFlopCounter:
    def test_accumulates(self):
        c = FlopCounter()
        c.add("a", 100)
        c.add("a", 50)
        c.add("b", 25)
        assert c.total == 175
        assert c.snapshot() == {"a": 150, "b": 25}

    def test_reset(self):
        c = FlopCounter()
        c.add("a", 1)
        c.reset()
        assert c.total == 0

    def test_merge(self):
        a, b = FlopCounter(), FlopCounter()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a.snapshot() == {"x": 3, "y": 3}

    def test_report_renders(self):
        c = FlopCounter()
        c.add("conv", 2e6)
        assert "conv" in c.report() and "total" in c.report()

    def test_null_counter_noop(self):
        n = NullFlopCounter()
        n.add("a", 1e9)
        assert n.total == 0.0 and n.snapshot() == {}


class TestVectorRate:
    def test_monotone_in_length(self):
        m = CrayC90()
        r = _vector_rate(np.array([1.0, 10, 100, 1000, 1e6]), m)
        assert np.all(np.diff(r) > 0)

    def test_asymptote(self):
        m = CrayC90()
        r = _vector_rate(np.array([1e9]), m)
        assert r[0] == pytest.approx(m.r_inf_mflops * 1e6, rel=1e-6)

    def test_half_performance_length(self):
        m = CrayC90()
        r = _vector_rate(np.array([m.n_half]), m)
        assert r[0] == pytest.approx(0.5 * m.r_inf_mflops * 1e6)


class TestCrayModel:
    @pytest.fixture()
    def workload(self):
        return CrayWorkload(
            level_flops_per_cycle=[4.0e9],
            level_visits_per_cycle=[1],
            level_group_sizes=[np.full(20, 250_000.0)],
            sweeps_per_step=20,
        )

    def test_speedup_shape(self, workload):
        rows = model_cray_table(workload)
        walls = [r.wall_s for r in rows]
        assert all(np.diff(walls) < 0)          # more CPUs, less wall
        speedup16 = walls[0] / walls[-1]
        assert 8.0 < speedup16 < 16.0           # sub-linear but strong

    def test_cpu_time_inflates_with_cpus(self, workload):
        rows = model_cray_table(workload)
        cpu = [r.cpu_s for r in rows]
        assert all(np.diff(cpu) > 0)
        assert cpu[-1] < 1.6 * cpu[0]           # bounded overhead

    def test_high_parallel_fraction(self, workload):
        # Paper: ">99% parallelism" from CPU/wall = 15.4 at 16 CPUs.
        row16 = model_cray_run(workload, 16)
        machine = CrayC90()
        compute_wall = row16.cpu_s / 16
        assert compute_wall / (row16.wall_s) > 0.8

    def test_mflops_scale(self, workload):
        rows = model_cray_table(workload)
        assert 200 < rows[0].mflops < 300       # ~ r_inf at 1 CPU
        assert rows[-1].mflops > 10 * rows[0].mflops / 16 * 10

    def test_short_vectors_hurt(self):
        # Same flops in tiny colour groups: rate collapses.
        big = CrayWorkload([1e9], [1], [np.full(20, 1e6)], 20)
        tiny = CrayWorkload([1e9], [1], [np.full(20, 200.0)], 20)
        assert model_cray_run(tiny, 16).wall_s > \
            model_cray_run(big, 16).wall_s

    def test_row_rounding(self, workload):
        row = model_cray_run(workload, 4).row()
        assert all(isinstance(x, int) for x in row)


class TestPhaseLevel:
    def test_prefixed_phase(self):
        assert phase_level("L2-w-gather") == 2

    def test_transfer_phase(self):
        assert phase_level("transfer-prolong-L1") == 1

    def test_unprefixed_defaults_to_zero(self):
        assert phase_level("w-gather") == 0


class TestDeltaModel:
    @pytest.fixture()
    def meas(self):
        return DeltaMeasurement(
            n_ranks=16,
            n_cycles=2,
            comm_phases={"w-gather": (100.0, 4.0e5, 5.0, 0),
                         "q-scatter": (100.0, 4.0e5, 5.0, 0)},
            level_flops_max=[5.0e7],
            level_flops_total=[7.0e8],
            level_vertices=[16000],
            level_edges=[100000],
            level_ghost_ratio=[0.3],
        )

    def test_total_is_comm_plus_comp(self, meas):
        model = model_delta_run(meas, 256, [804_056], [5_500_000], 0.9)
        assert model.total_s == pytest.approx(model.comm_s + model.comp_s)

    def test_more_nodes_less_comp(self, meas):
        m256 = model_delta_run(meas, 256, [804_056], [5_500_000], 0.9)
        m512 = model_delta_run(meas, 512, [804_056], [5_500_000], 0.9)
        assert m512.comp_s < m256.comp_s

    def test_better_hit_rate_faster(self, meas):
        slow = model_delta_run(meas, 256, [804_056], [5_500_000], 0.3)
        fast = model_delta_run(meas, 256, [804_056], [5_500_000], 0.95)
        assert fast.comp_s < slow.comp_s

    def test_row_format(self, meas):
        row = model_delta_run(meas, 256, [804_056], [5_500_000], 0.9).row()
        assert len(row) == 5 and row[0] == 256


class TestCacheModel:
    def test_hit_rate_in_unit_interval(self, bump_struct):
        hr = edge_loop_hit_rate(bump_struct.edges,
                                np.arange(bump_struct.n_edges))
        assert 0.0 <= hr <= 1.0

    def test_sorted_beats_shuffled(self, bump_struct):
        from repro.distsolver import random_shuffle_edges, sort_edges_by_vertex
        hr_sorted = edge_loop_hit_rate(
            bump_struct.edges, sort_edges_by_vertex(bump_struct.edges))
        hr_shuffled = edge_loop_hit_rate(
            bump_struct.edges, random_shuffle_edges(bump_struct.n_edges))
        assert hr_sorted > hr_shuffled

    def test_rate_monotone_in_hit_rate(self):
        assert effective_node_mflops(0.95) > effective_node_mflops(0.5)

    def test_rate_bounded_by_cached_peak(self):
        m = TouchstoneDelta()
        assert effective_node_mflops(1.0, m) == pytest.approx(
            1.0 / m.t_flop_cached_s / 1e6)

    def test_node_rate_for_ordering(self, bump_struct):
        res = node_rate_for_ordering(bump_struct.edges,
                                     np.arange(bump_struct.n_edges))
        assert res.mflops > 0 and 0 <= res.hit_rate <= 1
