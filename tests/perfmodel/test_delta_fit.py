"""Unit tests for the Delta message-cost calibration fit."""

import numpy as np
import pytest

from repro.perfmodel.delta import (DeltaMeasurement,
                                   fit_effective_message_costs)


def _meas(occs, bytes_, msgs=10.0, n_ranks=16, vertices=16000, edges=100000):
    return DeltaMeasurement(
        n_ranks=n_ranks,
        n_cycles=1,
        comm_phases={"phase": (msgs, bytes_, occs, 0)},
        level_flops_max=[1e7],
        level_flops_total=[1e8],
        level_vertices=[vertices],
        level_edges=[edges],
        level_ghost_ratio=[0.0],
    )


LEVELS = ([804_056], [5_500_000])


class TestFit:
    def test_exact_two_point_fit(self):
        # Construct comm values from known constants; the fit must recover
        # them (exact 2x2 solve through the relative weighting).
        t_sync, t_byte = 5e-3, 2e-7
        measurements, comms = [], []
        from repro.perfmodel.machines import TouchstoneDelta
        lat = TouchstoneDelta().latency_s
        for occs, bytes_ in ((40.0, 2e6), (40.0, 1e6)):
            m = _meas(occs, bytes_)
            _, rho_s, _, _ = __import__(
                "repro.perfmodel.delta", fromlist=["_scales"])._scales(
                m, 256, *LEVELS)
            msgs, bscaled, o = m.comm_components(rho_s)
            comms.append(100 * (t_sync * o + t_byte * bscaled + lat * msgs))
            measurements.append(m)
        fit_sync, fit_byte = fit_effective_message_costs(
            measurements, [256, 256], [LEVELS, LEVELS], comms)
        assert fit_sync == pytest.approx(t_sync, rel=1e-6)
        assert fit_byte == pytest.approx(t_byte, rel=1e-6)

    def test_nonnegative_fallback(self):
        # Inconsistent data that would drive one coefficient negative:
        # the fit clamps to a single-term model instead.
        m1 = _meas(40.0, 2e6)
        m2 = _meas(40.0, 1e6)
        # comm *increases* while bytes decrease at equal occs.
        fit_sync, fit_byte = fit_effective_message_costs(
            [m1, m2], [256, 256], [LEVELS, LEVELS], [100.0, 150.0])
        assert fit_sync >= 0 and fit_byte >= 0
        assert fit_sync > 0 or fit_byte > 0

    def test_degenerate_raises(self):
        m = _meas(0.0, 0.0, msgs=0.0)
        with pytest.raises(ValueError):
            fit_effective_message_costs([m], [256], [LEVELS], [0.0])
