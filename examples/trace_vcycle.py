#!/usr/bin/env python
"""Trace one multigrid V-cycle and open it in chrome://tracing.

Runs a two-level FAS V-cycle on a box mesh twice — once through the
shared-memory fused kernels, once through the distributed PARTI runtime
on the simulated machine — with a live telemetry tracer, then writes

* ``trace_vcycle.json``  — load it at chrome://tracing or
  https://ui.perfetto.dev to see the nested timeline: ``mg.cycle`` →
  ``mg.level0/1`` → ``solver.step`` → ``rk.stage`` → the fused kernels
  and ``scatter.*`` executors, plus ``mg.restrict``/``mg.prolong``
  grid transfers and every ``comm.exchange`` of the PARTI phases;
* ``trace_vcycle.jsonl`` — the archival JSON-lines dump;

and prints the per-phase summary table and communication counters.

Run:  python examples/trace_vcycle.py [--out DIR]
"""

import argparse
from pathlib import Path

from repro.distsolver import DistributedMultigrid
from repro.mesh import box_mesh
from repro.multigrid import MultigridHierarchy, run_multigrid
from repro.parti import SimMachine
from repro.partition import recursive_spectral_bisection
from repro.solver import SolverConfig
from repro.state import freestream_state
from repro.telemetry import Tracer, use_tracer
from repro.telemetry.export import (aggregate, format_counters,
                                    format_summary, write_chrome_trace,
                                    write_jsonl)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", type=Path, default=Path("."),
                    help="directory for trace files")
    ap.add_argument("--n-ranks", type=int, default=2,
                    help="simulated ranks for the distributed cycle")
    args = ap.parse_args(argv)

    w_inf = freestream_state(0.768, 1.116)
    tracer = Tracer()

    with use_tracer(tracer):
        with tracer.span("setup"):
            meshes = [box_mesh(7, 7, 7), box_mesh(4, 4, 4)]
            hierarchy = MultigridHierarchy(
                meshes, w_inf, SolverConfig(executor="fused"))
            assignments = [recursive_spectral_bisection(
                lv.solver.struct.edges, lv.solver.n_vertices, args.n_ranks)
                for lv in hierarchy.levels]
            machine = SimMachine(args.n_ranks, tracer=tracer)
            dmg = DistributedMultigrid(hierarchy, assignments, w_inf,
                                       machine=machine)

        # One V-cycle through the shared-memory fused kernels ...
        with tracer.span("vcycle.shared"):
            run_multigrid(hierarchy, n_cycles=1, gamma=1)

        # ... and one through the PARTI runtime on the simulated machine.
        with tracer.span("vcycle.distributed"):
            dmg.mg_cycle(dmg.freestream_solution(), gamma=1)

    chrome_path = args.out / "trace_vcycle.json"
    jsonl_path = args.out / "trace_vcycle.jsonl"
    n_events = write_chrome_trace(tracer, chrome_path)
    n_lines = write_jsonl(tracer, jsonl_path)
    print(f"wrote {chrome_path} ({n_events} events) — open it at "
          f"chrome://tracing or https://ui.perfetto.dev")
    print(f"wrote {jsonl_path} ({n_lines} lines)")
    print()

    wall = tracer.wall_time()
    print(format_summary(tracer, wall_s=wall))
    print()
    print(format_counters(tracer))
    print()

    # Accounting sanity: on this single-threaded timeline the exclusive
    # (self) times of all spans must add up to the traced wall-clock.
    total_self = sum(row["self_s"] for row in aggregate(tracer).values())
    deviation = abs(total_self - wall) / wall if wall > 0 else 0.0
    print(f"accounting check: sum(self) = {total_self * 1e3:.2f} ms, "
          f"wall-clock = {wall * 1e3:.2f} ms "
          f"(deviation {100 * deviation:.2f}%)")
    if deviation > 0.05:
        print("FAIL: summary does not account for the traced wall-clock")
        return 1
    print("OK: summary accounts for the wall-clock within 5%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
