"""Sanitized equivalence run: the CI ``sanitized-smoke`` gate.

Runs the three parallel execution paths whose invariants the runtime
sanitizers guard — the colored-threaded shared-memory executor, the
simulated overlap distributed driver, and the true-process overlap mp
backend — twice each: once plain, once under ``sanitize="all"`` (strict
mode, so any invariant violation raises at the faulting operation).

The script exits nonzero unless every sanitized run (a) completes with
**zero findings** and (b) produces a solution **bit-identical** to its
unsanitized twin — i.e. observing the invariants must not perturb the
computation.  Default mesh is the box27 benchmark case
(``box_mesh(27, 27, 27)``, ~20k vertices); ``--quick`` shrinks it for
fast local iteration.

Usage::

    PYTHONPATH=src python examples/sanitized_run.py [--quick]
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.distsolver import DistributedEulerSolver, run_distributed_mp
from repro.distsolver.partitioned_mesh import partition_solver_data
from repro.mesh import box_mesh, build_edge_structure
from repro.partition import recursive_coordinate_bisection
from repro.solver import EulerSolver, SolverConfig, build_boundary_data
from repro.state import freestream_state


def check(label: str, ref: np.ndarray, got: np.ndarray,
          findings: list) -> bool:
    identical = np.array_equal(ref, got)
    status = "ok" if identical and not findings else "FAIL"
    print(f"  {label:<28s} bit-identical={identical} "
          f"findings={len(findings)} [{status}]")
    for f in findings:
        print(f"    finding: {f}")
    return identical and not findings


def shared_memory_case(struct, w_inf, n_steps: int) -> bool:
    """Colored-threaded executor, sanitize=off vs all."""
    results = {}
    findings: list = []
    for sanitize in ("off", "all"):
        cfg = SolverConfig(executor="colored-threaded", n_threads=2,
                           sanitize=sanitize)
        solver = EulerSolver(struct, w_inf, cfg)
        w = np.tile(w_inf, (struct.n_vertices, 1))
        for _ in range(n_steps):
            w = solver.step(w)
        results[sanitize] = w
        if sanitize == "all":
            for san in solver.sanitizers.values():
                findings.extend(san.findings)
            solver.sanitizers["buffer"].close()
    return check("colored-threaded", results["off"], results["all"],
                 findings)


def sim_overlap_case(struct, vertices, w_inf, n_steps: int, n_ranks: int) -> bool:
    """Simulated distributed overlap driver, sanitize=off vs all."""
    assignment = recursive_coordinate_bisection(vertices, n_ranks)
    results = {}
    findings: list = []
    for sanitize in ("off", "all"):
        cfg = SolverConfig(dist_mode="overlap", sanitize=sanitize)
        d = DistributedEulerSolver(struct, w_inf, assignment, cfg)
        w = d.freestream_solution()
        for _ in range(n_steps):
            w = d.step(w)
        results[sanitize] = d.collect(w)
        if sanitize == "all":
            findings.extend(d.sanitizer.findings)
    return check(f"sim overlap ({n_ranks} ranks)", results["off"],
                 results["all"], findings)


def mp_overlap_case(struct, vertices, w_inf, n_cycles: int, n_ranks: int) -> bool:
    """True-process overlap mp backend, sanitize=off vs all.

    The per-rank schedule sanitizers live inside the worker processes;
    strict mode makes any finding fatal there, so completion plus bit
    identity is the zero-findings certificate.
    """
    assignment = recursive_coordinate_bisection(vertices, n_ranks)
    dmesh = partition_solver_data(struct, build_boundary_data(struct),
                                  assignment)
    w0 = np.tile(w_inf, (struct.n_vertices, 1))
    results = {}
    for sanitize in ("off", "all"):
        cfg = SolverConfig(dist_mode="overlap", sanitize=sanitize)
        results[sanitize] = run_distributed_mp(dmesh, w0, w_inf, cfg,
                                               n_cycles=n_cycles,
                                               timeout=300.0)
    return check(f"mp overlap ({n_ranks} ranks)", results["off"],
                 results["all"], [])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small mesh for fast local iteration")
    parser.add_argument("--steps", type=int, default=2,
                        help="time steps / cycles per run (default 2)")
    args = parser.parse_args(argv)

    n = 8 if args.quick else 27
    print(f"mesh: box_mesh({n}, {n}, {n})")
    mesh = box_mesh(n, n, n)
    struct = build_edge_structure(mesh)
    w_inf = freestream_state(mach=0.5, alpha_deg=1.0)

    t0 = time.perf_counter()
    ok = True
    ok &= shared_memory_case(struct, w_inf, args.steps)
    ok &= sim_overlap_case(struct, mesh.vertices, w_inf, args.steps, n_ranks=4)
    ok &= mp_overlap_case(struct, mesh.vertices, w_inf, args.steps, n_ranks=2)
    print(f"total {time.perf_counter() - t0:.1f}s: "
          f"{'all sanitized runs clean' if ok else 'MISMATCH OR FINDINGS'}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
