#!/usr/bin/env python
"""Batched ensemble sweep: hundreds of flow conditions, one pipeline.

The paper's Section 2.4 notes the preprocessing "may be amortized over a
large number of flow solutions ... to solve the flow over the particular
geometry for a whole range of Mach number and incidence conditions, as
is sometimes required in an industrial setting."  `design_sweep.py`
amortises the preprocessing; this example goes one step further and
amortises the *solver sweep itself*: `EulerSolver.solve_ensemble()`
advances every (Mach, alpha) condition simultaneously through one
batched residual pipeline — one gather per stage, one CSR scatter, the
state carrying a scenario axis — with per-scenario convergence tracking
and early exit of converged conditions.

Each batched scenario is bit-identical to a sequential
``executor="fused"`` solve at its conditions; the example checks that
on a few spot conditions after timing both paths.

Run:  python examples/ensemble_sweep.py
"""

import time

import numpy as np

from repro.mesh import bump_channel
from repro.solver import (EulerSolver, FlowState, SolverConfig,
                          integrated_forces)


def main() -> None:
    mesh = bump_channel(24, 3, 8)
    config = SolverConfig(executor="fused")
    flows = FlowState.grid(np.linspace(0.55, 0.80, 8),
                           alphas=(0.0, 1.116, 2.0))
    n_cycles = 50

    # ---- batched: one solver, one call --------------------------------
    t0 = time.perf_counter()
    solver = EulerSolver(mesh, flows[0].freestream(), config)
    result = solver.solve_ensemble(flows, n_cycles=n_cycles, rtol=0.12)
    t_batched = time.perf_counter() - t0
    print(f"batched sweep: {result.n_scenarios} conditions in "
          f"{t_batched:.1f}s ({result.scenarios_per_s:.2f} scenarios/s)\n")

    print(f"{'Mach':>6} {'alpha':>6} {'cycles':>7} {'resnorm':>10} "
          f"{'|F|':>8}  conv")
    for s, f in enumerate(flows):
        force = np.linalg.norm(
            integrated_forces(result.states[s], solver.bdata))
        mark = "yes" if result.converged[s] else " - "
        print(f"{f.mach:6.3f} {f.alpha_deg:6.2f} {result.cycles[s]:7d} "
              f"{result.final_norms[s]:10.2e} {force:8.3f}  {mark}")

    # ---- the old client pattern, for comparison -----------------------
    # One fresh solver per condition (spot-check three of them), then
    # scale to the full grid for the projected sequential time.
    spots = [0, len(flows) // 2, len(flows) - 1]
    t0 = time.perf_counter()
    for s in spots:
        seq = EulerSolver(mesh, flows[s].freestream(), config)
        w, _ = seq.run(n_cycles=int(result.cycles[s]))
        assert np.array_equal(w, result.states[s]), \
            "batched scenario must be bit-identical to its sequential solve"
    t_seq = (time.perf_counter() - t0) / len(spots) * len(flows)
    print(f"\nsequential projection ({len(spots)} spot solves, "
          f"bit-identical): ~{t_seq:.1f}s for the full grid "
          f"-> batched is ~{t_seq / t_batched:.1f}x")


if __name__ == "__main__":
    main()
