#!/usr/bin/env python
"""Design-loop use case: Mach sweep with amortised preprocessing.

The paper's Section 2.4 observes that the expensive preprocessing (mesh
generation, colouring/partitioning, inter-grid transfer search) "may be
amortized over a large number of flow solutions.  A set of grids may be
generated, preprocessed ... and then employed to solve the flow over the
particular geometry for a whole range of Mach number and incidence
conditions, as is sometimes required in an industrial setting."

This example does exactly that: it builds the multigrid hierarchy once,
then sweeps the freestream Mach number, restarting each solution from the
previous one, and reports how the supersonic pocket and the bump pressure
load grow through the transonic range.

Run:  python examples/design_sweep.py
"""

import time

import numpy as np

from repro.mesh import bump_channel
from repro.multigrid import MultigridHierarchy, mg_cycle
from repro.solver import integrated_forces, mach_field
from repro.state import freestream_state


def main() -> None:
    t0 = time.perf_counter()
    machs = [0.70, 0.72, 0.74, 0.768, 0.78, 0.80]
    meshes = [bump_channel(36, 4, 12), bump_channel(18, 2, 6),
              bump_channel(9, 2, 3)]

    # Preprocessing happens once (hierarchy + transfers); the per-Mach
    # solver state is rebuilt cheaply around the same mesh structures.
    hierarchy = MultigridHierarchy(meshes, freestream_state(machs[0], 1.116))
    t_pre = time.perf_counter() - t0
    print(f"preprocessing (meshes + transfer search): {t_pre:.1f}s, "
          f"levels {hierarchy.level_sizes()}\n")
    print(f"{'Mach':>6s} {'cycles':>7s} {'residual':>10s} {'max M':>7s} "
          f"{'drag Fx':>9s} {'lift Fz':>9s}")

    w = hierarchy.freestream_solution()
    for mach in machs:
        w_inf = freestream_state(mach, 1.116)
        # Update the freestream on every level (the BC state), keep the
        # current field as the restart — the industrial sweep pattern.
        for lv in hierarchy.levels:
            lv.solver.w_inf = w_inf
        solver = hierarchy.fine.solver

        n_cycles = 60
        for _ in range(n_cycles):
            w = mg_cycle(hierarchy, w, gamma=2)
        resid = solver.density_residual_norm(w)
        force = integrated_forces(w, solver.bdata)
        print(f"{mach:6.3f} {n_cycles:7d} {resid:10.2e} "
              f"{mach_field(w).max():7.3f} {force[0]:+9.4f} {force[2]:+9.4f}")

    print(f"\ntotal {time.perf_counter() - t0:.1f}s for {len(machs)} "
          f"flow solutions on one set of preprocessed grids")


if __name__ == "__main__":
    main()
