#!/usr/bin/env python
"""Flow around a 3-D body: the paper's aircraft-configuration analog.

Generates the cube-sphere O-mesh around a slender ellipsoid (the stand-in
for the paper's Figure 3 aircraft mesh), solves subsonic flow around it,
and reports surface pressures and the pressure drag — demonstrating the
solver on a genuinely 3-D closed body with curved walls.

Run:  python examples/aircraft_analog.py
"""

import numpy as np

from repro.mesh import ellipsoid_shell, mesh_quality
from repro.solver import (EulerSolver, SolverConfig, mach_field,
                          surface_pressure_coefficient)
from repro.state import freestream_state


def main() -> None:
    # Body-fitted mesh between the ellipsoid and a spherical farfield.
    mesh = ellipsoid_shell(n_surface=8, n_layers=8,
                           semi_axes=(1.0, 0.4, 0.25), far_radius=8.0)
    print(mesh.describe())
    print(mesh_quality(mesh).report())
    print("(paper's Figure 3 mesh: 106,064 nodes / 575,986 tets)")
    print()

    # Subsonic flow at mild incidence (transonic over a slender body would
    # need more resolution than a quickstart-sized mesh provides).  The
    # cube-sphere shell contains low-quality tets near the cube corners
    # (radius-ratio down to ~0.05), so conservative time stepping is used:
    # CFL 1.5 without residual averaging — the standard retreat on poor
    # meshes.
    w_inf = freestream_state(mach=0.50, alpha_deg=2.0)
    solver = EulerSolver(mesh, w_inf,
                         SolverConfig(cfl=1.5, residual_smoothing=False))

    def report(cycle, w, residual):
        if cycle % 40 == 0:
            print(f"cycle {cycle:4d}  residual {residual:.3e}")

    w, history = solver.run(n_cycles=200, callback=report)
    print(f"final residual {history[-1]:.3e}")
    print()

    mach = mach_field(w)
    print(f"Mach range: [{mach.min():.3f}, {mach.max():.3f}] "
          f"(stagnation at the nose, acceleration over the shoulder)")

    verts, cp = surface_pressure_coefficient(w, solver.bdata, w_inf)
    # Stagnation point: Cp ~ +1 (compressible slightly above).
    print(f"surface Cp range: [{cp.min():.3f}, {cp.max():.3f}] "
          f"(stagnation Cp ~ +1)")

    # Nose/tail pressure split along the body axis.
    x_wall = mesh.vertices[verts, 0]
    nose = cp[x_wall < -0.5].mean()
    tail = cp[x_wall > 0.5].mean()
    print(f"mean Cp fore (x < -0.5): {nose:+.3f}, aft (x > 0.5): {tail:+.3f}")


if __name__ == "__main__":
    main()
