#!/usr/bin/env python
"""Shared vs distributed memory: regenerate the paper's full evaluation.

Runs the complete harness — Tables 1a-1c (Cray Y-MP C90 model), Tables
2a-2c (Touchstone Delta model over the simulated PARTI runtime), and the
Section 5 cross-machine comparison — printing model values next to the
paper's published numbers.

Run:  python examples/machine_comparison.py [--fast]
(--fast uses small meshes: seconds instead of a couple of minutes.)
"""

import sys

from repro.harness import (FAST_CASE, FULL_CASE, compare_machines,
                           format_table1, format_table2, table1, table2)


def main() -> None:
    case = FAST_CASE if "--fast" in sys.argv else FULL_CASE
    print(f"workload: {case.name} case, levels {case.levels}\n")

    for strategy, title in [("sg", "Table 1a: C90, single grid"),
                            ("v", "Table 1b: C90, V-cycle"),
                            ("w", "Table 1c: C90, W-cycle")]:
        print(format_table1(*table1(strategy, case), title))
        print()

    for strategy, title in [("sg", "Table 2a: Delta, single grid"),
                            ("v", "Table 2b: Delta, V-cycle"),
                            ("w", "Table 2c: Delta, W-cycle")]:
        print(format_table2(*table2(strategy, case), title))
        print()

    print(compare_machines(case).report())


if __name__ == "__main__":
    main()
