#!/usr/bin/env python
"""Multigrid acceleration: single grid vs V-cycle vs W-cycle (Figure 2).

Builds the paper-style sequence of completely unrelated meshes, runs the
three solution strategies on the transonic bump, and prints a text plot of
the convergence histories — the reproduction of the paper's Figure 2.

Run:  python examples/multigrid_convergence.py [n_cycles]
"""

import sys

import numpy as np

from repro.mesh import bump_channel
from repro.multigrid import MultigridHierarchy, cycle_work_units, run_multigrid
from repro.state import freestream_state


def ascii_plot(histories: dict, width: int = 64, height: int = 18) -> str:
    """Shared-axes log-residual plot rendered in ASCII."""
    all_vals = np.concatenate([np.asarray(h) for h in histories.values()])
    all_vals = all_vals[all_vals > 0]
    lo, hi = np.log10(all_vals.min()), np.log10(all_vals.max())
    n_max = max(len(h) for h in histories.values())
    grid = [[" "] * width for _ in range(height)]
    marks = {}
    for mark, (name, hist) in zip("WVS", histories.items()):
        marks[mark] = name
        for i, r in enumerate(hist):
            if r <= 0:
                continue
            col = int(i / max(n_max - 1, 1) * (width - 1))
            row = int((np.log10(r) - lo) / max(hi - lo, 1e-9) * (height - 1))
            grid[height - 1 - row][col] = mark
    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(f"cycles 0..{n_max - 1}; log10(residual) "
                 f"{hi:.1f} (top) .. {lo:.1f} (bottom)")
    for mark, name in marks.items():
        lines.append(f"  {mark} = {name}")
    return "\n".join(lines)


def main() -> None:
    n_cycles = int(sys.argv[1]) if len(sys.argv) > 1 else 100

    w_inf = freestream_state(0.768, 1.116)
    meshes = [bump_channel(48, 4, 16), bump_channel(24, 2, 8),
              bump_channel(12, 2, 4), bump_channel(6, 2, 2)]
    hierarchy = MultigridHierarchy(meshes, w_inf)
    print("multigrid sequence (nodes, edges):", hierarchy.level_sizes())
    print(f"cycle work units vs single grid: "
          f"V = {cycle_work_units(hierarchy, 1):.2f}, "
          f"W = {cycle_work_units(hierarchy, 2):.2f}")
    print()

    histories = {}
    _, histories["W-cycle"] = run_multigrid(hierarchy, n_cycles=n_cycles,
                                            gamma=2)
    _, histories["V-cycle"] = run_multigrid(hierarchy, n_cycles=n_cycles,
                                            gamma=1)
    _, histories["single grid"] = hierarchy.fine.solver.run(
        n_cycles=2 * n_cycles)

    print(ascii_plot(histories))
    print()
    for name, hist in histories.items():
        orders = np.log10(hist[0] / max(min(hist), 1e-300))
        print(f"{name:>12s}: {len(hist) - 1} cycles, {orders:.2f} orders, "
              f"final {hist[-1]:.3e}")
    print("\nPaper (Figure 2): W-cycle reaches ~6 orders in 100 cycles on "
          "the 804k-node mesh;")
    print("single grid needs many hundreds of cycles for a fraction of that.")


if __name__ == "__main__":
    main()
