#!/usr/bin/env python
"""Quickstart: solve transonic flow over a bump with EUL3D-repro.

Generates a small 3-D unstructured tet mesh, runs the five-stage
Runge-Kutta Euler solver at the paper's flow condition (M = 0.768,
alpha = 1.116 deg), and prints convergence plus basic aerodynamics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.mesh import bump_channel, mesh_quality
from repro.solver import (EulerSolver, SolverConfig, integrated_forces,
                          mach_field, surface_pressure_coefficient)
from repro.state import freestream_state


def main() -> None:
    # 1. Mesh: a transonic channel with a 4% bump on the floor.
    mesh = bump_channel(36, 4, 12)
    print(mesh.describe())
    print(mesh_quality(mesh).report())
    print()

    # 2. Flow condition and solver (the paper's case).
    w_inf = freestream_state(mach=0.768, alpha_deg=1.116)
    solver = EulerSolver(mesh, w_inf, SolverConfig())

    # 3. March to steady state, monitoring the density residual.
    def report(cycle, w, residual):
        if cycle % 50 == 0:
            print(f"cycle {cycle:4d}  residual {residual:.3e}")

    w, history = solver.run(n_cycles=300, callback=report)
    print(f"final residual {history[-1]:.3e} "
          f"({np.log10(history[0] / history[-1]):.1f} orders reduced)")
    print()

    # 4. Post-process: Mach field, wall pressures, pressure force.
    mach = mach_field(w)
    print(f"Mach number range: [{mach.min():.3f}, {mach.max():.3f}] "
          f"(freestream 0.768 -> supersonic pocket over the bump)")
    verts, cp = surface_pressure_coefficient(w, solver.bdata, w_inf)
    print(f"wall Cp range: [{cp.min():.3f}, {cp.max():.3f}] "
          f"over {verts.size} wall vertices")
    force = integrated_forces(w, solver.bdata)
    print(f"pressure force on walls: ({force[0]:+.4f}, {force[1]:+.4f}, "
          f"{force[2]:+.4f})")


if __name__ == "__main__":
    main()
