#!/usr/bin/env python
"""Fault-tolerant stepping: injected faults, detection, and recovery.

Three demonstrations of the resilience layer (docs/resilience.md):

1. a NaN injected mid-run is caught by the per-cycle health guard, the
   solver backs off CFL, bumps dissipation, restores the last
   checkpoint, and still converges;
2. a run interrupted at a checkpoint resumes bit-identically;
3. a rank of the real-process distributed backend is killed mid-step
   and the driver names it within a fraction of a second instead of
   stalling out the full collection timeout.

Run:  python examples/fault_tolerant_run.py
"""

import time
from dataclasses import replace

import numpy as np

from repro.distsolver import run_distributed_mp
from repro.distsolver.partitioned_mesh import partition_solver_data
from repro.mesh import build_edge_structure, bump_channel
from repro.partition import recursive_spectral_bisection
from repro.resilience import (Checkpoint, CheckpointStore, FaultInjector,
                              FaultSpec, RankFailedError)
from repro.solver import EulerSolver, SolverConfig, build_boundary_data
from repro.state import freestream_state
from repro.telemetry import global_counters, reset_global_counters


def print_counters() -> None:
    counters = {k: v for k, v in sorted(global_counters().items())
                if k.startswith("resilience.")}
    width = max(len(k) for k in counters) if counters else 0
    for name, value in counters.items():
        print(f"    {name:<{width}}  {value:g}")


def demo_nan_recovery(struct, w_inf) -> None:
    print("=== 1. NaN injection -> guard -> CFL backoff -> restore ===")
    cfg = replace(SolverConfig(), checkpoint_interval=5, max_recoveries=2)
    solver = EulerSolver(struct, w_inf, cfg)

    fired = []

    def corrupt_once(cycle, w, resnorm):
        if cycle == 12 and not fired:
            fired.append(True)
            w[0, 0] = np.nan
            print(f"  cycle {cycle}: poisoned w[0, 0] with NaN")

    w, history = solver.run(n_cycles=25, callback=corrupt_once)
    print(f"  run completed: residual {history[0]:.3e} -> {history[-1]:.3e}, "
          f"all finite: {np.isfinite(w).all()}")
    print(f"  config after recovery: cfl {cfg.cfl} -> {solver.config.cfl}, "
          f"k2 {cfg.k2} -> {solver.config.k2}")
    print("  resilience counters:")
    print_counters()


def demo_checkpoint_resume(struct, w_inf) -> None:
    print("\n=== 2. checkpoint/restart is bit-identical ===")
    cfg = SolverConfig()
    w_full, _ = EulerSolver(struct, w_inf, cfg).run(n_cycles=10)

    first = EulerSolver(struct, w_inf, cfg)
    w_mid, _ = first.run(n_cycles=5)
    ckpt = Checkpoint.of(5, w_mid, cfg)
    print(f"  'crashed' after cycle {ckpt.cycle}; "
          f"checkpoint hash {ckpt.config_hash}")

    w_resumed, _ = EulerSolver(struct, w_inf, cfg).run(n_cycles=10,
                                                       resume_from=ckpt)
    print(f"  resumed 5 more cycles; bit-identical to uninterrupted run: "
          f"{np.array_equal(w_resumed, w_full)}")


def demo_rank_kill(struct, w_inf) -> None:
    print("\n=== 3. killed rank is detected and named promptly ===")
    n_ranks = 3
    asg = recursive_spectral_bisection(struct.edges, struct.n_vertices,
                                       n_ranks)
    dmesh = partition_solver_data(struct, build_boundary_data(struct), asg)
    w0 = np.tile(w_inf, (struct.n_vertices, 1))

    injector = FaultInjector([FaultSpec(kind="kill_rank", rank=1, op=6)])
    t0 = time.monotonic()
    try:
        run_distributed_mp(dmesh, w0, w_inf, SolverConfig(), n_cycles=3,
                           injector=injector)
    except RankFailedError as err:
        print(f"  caught in {time.monotonic() - t0:.2f} s: {err}")
    print("  resilience counters:")
    print_counters()


def main() -> None:
    struct = build_edge_structure(bump_channel(12, 2, 4))
    w_inf = freestream_state(0.768, 1.116)
    print(f"mesh: {struct.n_vertices} vertices, {struct.n_edges} edges\n")

    demo_nan_recovery(struct, w_inf)
    reset_global_counters()
    demo_checkpoint_resume(struct, w_inf)
    reset_global_counters()
    demo_rank_kill(struct, w_inf)


if __name__ == "__main__":
    main()
