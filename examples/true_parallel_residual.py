#!/usr/bin/env python
"""PARTI over real OS processes: the distributed pattern, not simulated.

The tables in EXPERIMENTS.md come from the *simulated* machine (which
logs every byte).  This example shows the same inspector data driving
genuine message passing: each rank is a separate Python process, ghost
values and crossing-edge contributions travel through pipes, and the
assembled convective residual matches the sequential operator to machine
precision.

Run:  python examples/true_parallel_residual.py [n_ranks]
"""

import sys
import time

import numpy as np

from repro.distsolver import mp_convective_residual, partition_solver_data
from repro.mesh import build_edge_structure, bump_channel
from repro.partition import recursive_spectral_bisection
from repro.scatter import EdgeScatter
from repro.solver import build_boundary_data
from repro.solver.flux import convective_operator
from repro.state import freestream_state


def main() -> None:
    n_ranks = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    struct = build_edge_structure(bump_channel(36, 4, 12))
    winf = freestream_state(0.768, 1.116)
    rng = np.random.default_rng(7)
    w = np.tile(winf, (struct.n_vertices, 1))
    w *= rng.uniform(0.95, 1.05, (struct.n_vertices, 1))

    asg = recursive_spectral_bisection(struct.edges, struct.n_vertices,
                                       n_ranks)
    dmesh = partition_solver_data(struct, build_boundary_data(struct), asg)
    print(f"{struct.n_vertices} vertices over {n_ranks} OS processes; "
          f"ghosts/rank mean {dmesh.schedule.ghost_counts().mean():.0f}")

    t0 = time.perf_counter()
    q_mp = mp_convective_residual(dmesh, w)
    t_mp = time.perf_counter() - t0

    t0 = time.perf_counter()
    q_seq = convective_operator(w, struct.edges, struct.eta,
                                EdgeScatter(struct.edges, struct.n_vertices))
    t_seq = time.perf_counter() - t0

    err = np.abs(q_mp - q_seq).max() / np.abs(q_seq).max()
    print(f"max relative deviation: {err:.2e}")
    print(f"wall: {t_mp * 1e3:.0f} ms across processes vs "
          f"{t_seq * 1e3:.1f} ms sequential (process spawn dominates at "
          f"this mesh size — the point is correctness of the pattern)")


if __name__ == "__main__":
    main()
