#!/usr/bin/env python
"""The two ghost-payload fabrics of the mp backend, side by side.

Runs the full five-stage distributed solver over real OS processes
twice — once with ``transport="pipe"`` (every ghost payload pickled
through a multiprocessing pipe) and once with ``transport="shm"``
(payloads memcpy'd through ``multiprocessing.shared_memory`` slabs, the
pipes carrying only ~49-byte control descriptors) — then verifies the
two runs are **bit-identical** and prints the traffic split: under shm
the pipes collapse to control bytes while the slabs carry the payload
volume.

Wall-clock note: the transports only separate in time when ranks own
their own cores; on a single-core host all ranks time-share one CPU
and the pickle savings show up in the byte split, not the wall.

Run:  python examples/transport_run.py [--fast]
      (box27 mesh, 4 ranks; --fast drops to box8)
"""

import sys
import time

import numpy as np

from repro.distsolver import DistributedEulerSolver, run_distributed_mp
from repro.distsolver.shm_channel import CTRL_BYTES
from repro.mesh import box_mesh, build_edge_structure
from repro.observatory import comm_matrix_from_payloads
from repro.partition import recursive_spectral_bisection
from repro.solver import SolverConfig
from repro.state import freestream_state
from repro.telemetry import Tracer


def main() -> None:
    fast = "--fast" in sys.argv[1:]
    n, n_ranks, n_cycles = (8, 4, 2) if fast else (27, 4, 2)
    struct = build_edge_structure(box_mesh(n, n, n))
    w_inf = freestream_state(0.768, 1.116)
    asg = recursive_spectral_bisection(struct.edges, struct.n_vertices,
                                       n_ranks)
    dmesh = DistributedEulerSolver(struct, w_inf, asg, SolverConfig()).dmesh
    w0 = np.tile(w_inf, (struct.n_vertices, 1))
    print(f"box{n}: {struct.n_vertices} vertices over {n_ranks} OS "
          f"processes, {n_cycles} cycles per transport")

    states, walls = {}, {}
    for transport in ("pipe", "shm"):
        cfg = SolverConfig(transport=transport)
        tracer = Tracer()
        t0 = time.perf_counter()
        states[transport] = run_distributed_mp(dmesh, w0, w_inf, cfg,
                                               n_cycles=n_cycles,
                                               tracer=tracer)
        walls[transport] = time.perf_counter() - t0
        cm = comm_matrix_from_payloads(tracer.remote_payloads, n_ranks,
                                       n_cycles)
        what = ("pickled payloads" if transport == "pipe"
                else f"control descriptors, {CTRL_BYTES} B each")
        print(f"\ntransport={transport!r}: {walls[transport] * 1e3:.0f} ms "
              f"wall, {cm.total_msgs} messages")
        print(f"  pipes carried {cm.total_bytes:>12,} bytes ({what})")
        print(f"  slabs carried {cm.total_shm_bytes:>12,} bytes")

    identical = np.array_equal(states["pipe"], states["shm"])
    print(f"\nbit-identical across transports: {identical}")
    if not identical:
        raise SystemExit("transport results diverged")
    ratio = walls["pipe"] / walls["shm"]
    print(f"wall ratio pipe/shm: {ratio:.2f}x")


if __name__ == "__main__":
    main()
