#!/usr/bin/env python
"""Distributed-memory EUL3D on the simulated Touchstone Delta.

Partitions the mesh with recursive spectral bisection, builds the PARTI
communication schedules (inspector), runs the SPMD solver on the simulated
message-passing machine (executor), verifies the answer against the
sequential solver, and prints the measured communication breakdown — the
machinery behind the paper's Tables 2a-2c.

Run:  python examples/distributed_delta_run.py [n_ranks]
"""

import sys

import numpy as np

from repro.distsolver import DistributedEulerSolver
from repro.mesh import build_edge_structure, bump_channel
from repro.partition import partition_metrics, recursive_spectral_bisection
from repro.solver import EulerSolver, SolverConfig
from repro.state import freestream_state


def main() -> None:
    n_ranks = int(sys.argv[1]) if len(sys.argv) > 1 else 16

    mesh = bump_channel(36, 4, 12)
    struct = build_edge_structure(mesh)
    w_inf = freestream_state(0.768, 1.116)
    print(f"{mesh.describe()}; partitioning into {n_ranks} ranks with RSB")

    assignment = recursive_spectral_bisection(struct.edges,
                                              struct.n_vertices, n_ranks)
    metrics = partition_metrics(struct.edges, assignment, n_ranks)
    print(metrics.report())
    print()

    dist = DistributedEulerSolver(struct, w_inf, assignment, SolverConfig())
    ghost_counts = dist.schedule.ghost_counts()
    print(f"PARTI inspector: ghost vertices per rank "
          f"min {ghost_counts.min()} / mean {ghost_counts.mean():.0f} / "
          f"max {ghost_counts.max()}")

    n_cycles = 10
    w_list, history = dist.run(n_cycles=n_cycles)
    print(f"\nran {n_cycles} cycles: residual {history[0]:.3e} -> "
          f"{history[-1]:.3e}")

    # Verify bit-level agreement with the sequential solver.
    seq = EulerSolver(struct, w_inf, SolverConfig())
    w_seq = seq.freestream_solution()
    for _ in range(n_cycles):
        w_seq = seq.step(w_seq)
    err = np.abs(dist.collect(w_list) - w_seq).max() / np.abs(w_seq).max()
    print(f"max relative deviation from sequential solver: {err:.2e}")

    print("\nmeasured communication (simulated machine):")
    print(dist.machine.log.report())

    total_flops = sum(arr.sum() for arr in dist.rank_flops.values())
    print(f"\ncounted flops: {total_flops / 1e9:.2f} GFlop over "
          f"{n_cycles} cycles "
          f"({total_flops / n_cycles / struct.n_edges:.0f} flops/edge/cycle)")


if __name__ == "__main__":
    main()
